//! Workload execution: turning [`vfs::Op`]s into system calls.
//!
//! The executor is shared between the recorded run and the oracle run so
//! both materialize byte-identical writes. It tracks the descriptor-slot
//! table that slot-addressed operations reference and reports, per
//! operation, the path the operation targeted (used by the checker's
//! data-write relaxation and the weak-guarantee fsync check).

use vfs::{
    workload::fill_data,
    FileSystem, FsError, FsResult, Op, OpenFlags,
};

/// Result of executing one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpResult {
    /// The system-call result (`Ok` or the errno).
    pub result: Result<(), FsError>,
    /// The primary path the operation addressed, if resolvable.
    pub target: Option<String>,
}

/// Executes workload operations against a [`FileSystem`], maintaining the
/// descriptor-slot table.
#[derive(Debug, Default, Clone)]
pub struct Executor {
    slots: Vec<Option<(vfs::Fd, String)>>,
}

impl Executor {
    /// Creates a fresh executor (empty slot table).
    pub fn new() -> Self {
        Executor::default()
    }

    fn slot(&self, i: usize) -> FsResult<(vfs::Fd, String)> {
        self.slots.get(i).and_then(|s| s.clone()).ok_or(FsError::BadFd)
    }

    fn set_slot<F: FileSystem>(&mut self, fs: &mut F, i: usize, v: Option<(vfs::Fd, String)>) {
        if self.slots.len() <= i {
            self.slots.resize(i + 1, None);
        }
        // Close whatever previously occupied the slot.
        if let Some((old, _)) = self.slots[i].take() {
            let _ = fs.close(old);
        }
        self.slots[i] = v;
    }

    /// Executes `op` (the `seq`-th operation of the workload) on `fs`.
    pub fn exec<F: FileSystem>(&mut self, fs: &mut F, op: &Op, seq: usize) -> OpResult {
        match op {
            Op::Creat { path } => OpResult { result: fs.creat(path), target: Some(path.clone()) },
            Op::Mkdir { path } => OpResult { result: fs.mkdir(path), target: Some(path.clone()) },
            Op::Rmdir { path } => OpResult { result: fs.rmdir(path), target: Some(path.clone()) },
            Op::Unlink { path } => {
                OpResult { result: fs.unlink(path), target: Some(path.clone()) }
            }
            Op::Remove { path } => {
                let r = match fs.unlink(path) {
                    Err(FsError::IsDir) => fs.rmdir(path),
                    other => other,
                };
                OpResult { result: r, target: Some(path.clone()) }
            }
            Op::Link { old, new } => {
                OpResult { result: fs.link(old, new), target: Some(new.clone()) }
            }
            Op::Rename { old, new } => {
                let r = fs.rename(old, new);
                if r.is_ok() {
                    // Keep slot paths current: a rename of the opened file
                    // (or any ancestor directory) changes where the
                    // descriptor's inode is visible, and the checker's
                    // data-write relaxation keys on that path. (A rename
                    // *onto* a slot's path orphans its inode; the stale
                    // association can only widen the relaxation — same as
                    // an unlinked-but-open descriptor — never flag a false
                    // positive.)
                    for s in self.slots.iter_mut().flatten() {
                        if s.1 == *old {
                            s.1 = new.clone();
                        } else if let Some(rest) = s.1.strip_prefix(old.as_str()) {
                            if rest.starts_with('/') {
                                s.1 = format!("{new}{rest}");
                            }
                        }
                    }
                }
                OpResult { result: r, target: Some(new.clone()) }
            }
            Op::Truncate { path, size } => {
                OpResult { result: fs.truncate(path, *size), target: Some(path.clone()) }
            }
            Op::WritePath { path, off, size } => {
                let r = (|| {
                    let fd = fs.open(path, OpenFlags::CREATE)?;
                    let data = fill_data(seq, *off, *size as usize);
                    let w = fs.pwrite(fd, *off, &data);
                    let c = fs.close(fd);
                    w?;
                    c
                })();
                OpResult { result: r, target: Some(path.clone()) }
            }
            Op::FallocPath { path, mode, off, len } => {
                let r = (|| {
                    let fd = fs.open(path, OpenFlags::CREATE)?;
                    let f = fs.fallocate(fd, *mode, *off, *len);
                    let c = fs.close(fd);
                    f?;
                    c
                })();
                OpResult { result: r, target: Some(path.clone()) }
            }
            Op::FsyncPath { path } => {
                let r = (|| {
                    let fd = fs.open(path, OpenFlags::RDWR)?;
                    let s = fs.fsync(fd);
                    let c = fs.close(fd);
                    s?;
                    c
                })();
                OpResult { result: r, target: Some(path.clone()) }
            }
            Op::Open { slot, path, flags } => match fs.open(path, *flags) {
                Ok(fd) => {
                    self.set_slot(fs, *slot, Some((fd, path.clone())));
                    OpResult { result: Ok(()), target: Some(path.clone()) }
                }
                Err(e) => OpResult { result: Err(e), target: Some(path.clone()) },
            },
            Op::Close { slot } => match self.slot(*slot) {
                Ok((fd, path)) => {
                    self.slots[*slot] = None;
                    OpResult { result: fs.close(fd), target: Some(path) }
                }
                Err(e) => OpResult { result: Err(e), target: None },
            },
            Op::Write { slot, size } => match self.slot(*slot) {
                Ok((fd, path)) => {
                    let data = fill_data(seq, 0, *size as usize);
                    OpResult { result: fs.write(fd, &data).map(|_| ()), target: Some(path) }
                }
                Err(e) => OpResult { result: Err(e), target: None },
            },
            Op::Pwrite { slot, off, size } => match self.slot(*slot) {
                Ok((fd, path)) => {
                    let data = fill_data(seq, *off, *size as usize);
                    OpResult {
                        result: fs.pwrite(fd, *off, &data).map(|_| ()),
                        target: Some(path),
                    }
                }
                Err(e) => OpResult { result: Err(e), target: None },
            },
            Op::Falloc { slot, mode, off, len } => match self.slot(*slot) {
                Ok((fd, path)) => {
                    OpResult { result: fs.fallocate(fd, *mode, *off, *len), target: Some(path) }
                }
                Err(e) => OpResult { result: Err(e), target: None },
            },
            Op::Fsync { slot } => match self.slot(*slot) {
                Ok((fd, path)) => OpResult { result: fs.fsync(fd), target: Some(path) },
                Err(e) => OpResult { result: Err(e), target: None },
            },
            Op::Fdatasync { slot } => match self.slot(*slot) {
                Ok((fd, path)) => OpResult { result: fs.fdatasync(fd), target: Some(path) },
                Err(e) => OpResult { result: Err(e), target: None },
            },
            Op::Sync => OpResult { result: fs.sync(), target: None },
            Op::Read { slot, off, len } => match self.slot(*slot) {
                Ok((fd, path)) => {
                    let mut buf = vec![0u8; (*len as usize).min(1 << 20)];
                    OpResult {
                        result: fs.pread(fd, *off, &mut buf).map(|_| ()),
                        target: Some(path),
                    }
                }
                Err(e) => OpResult { result: Err(e), target: None },
            },
            Op::SetXattr { path, name, value } => {
                OpResult { result: fs.setxattr(path, name, value), target: Some(path.clone()) }
            }
            Op::RemoveXattr { path, name } => {
                OpResult { result: fs.removexattr(path, name), target: Some(path.clone()) }
            }
            Op::SetCpu { cpu } => {
                fs.set_cpu(*cpu);
                OpResult { result: Ok(()), target: None }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::model::ModelFs;

    #[test]
    fn slot_table_open_write_close() {
        let mut m = ModelFs::new();
        let mut ex = Executor::new();
        let ops = [Op::Creat { path: "/f".into() },
            Op::Open { slot: 0, path: "/f".into(), flags: OpenFlags::RDWR },
            Op::Pwrite { slot: 0, off: 0, size: 10 },
            Op::Close { slot: 0 }];
        for (i, op) in ops.iter().enumerate() {
            let r = ex.exec(&mut m, op, i);
            assert!(r.result.is_ok(), "{op:?}: {r:?}");
        }
        assert_eq!(m.read_file("/f").unwrap(), fill_data(2, 0, 10));
    }

    #[test]
    fn bad_slot_reports_badfd() {
        let mut m = ModelFs::new();
        let mut ex = Executor::new();
        let r = ex.exec(&mut m, &Op::Write { slot: 3, size: 8 }, 0);
        assert_eq!(r.result, Err(FsError::BadFd));
    }

    #[test]
    fn remove_dispatches_on_type() {
        let mut m = ModelFs::new();
        let mut ex = Executor::new();
        ex.exec(&mut m, &Op::Mkdir { path: "/d".into() }, 0);
        ex.exec(&mut m, &Op::Creat { path: "/f".into() }, 1);
        assert!(ex.exec(&mut m, &Op::Remove { path: "/d".into() }, 2).result.is_ok());
        assert!(ex.exec(&mut m, &Op::Remove { path: "/f".into() }, 3).result.is_ok());
        assert!(m.stat("/d").is_err());
        assert!(m.stat("/f").is_err());
    }

    #[test]
    fn rename_keeps_slot_paths_current() {
        let mut m = ModelFs::new();
        let mut ex = Executor::new();
        ex.exec(&mut m, &Op::Mkdir { path: "/d".into() }, 0);
        ex.exec(&mut m, &Op::Open { slot: 0, path: "/d/f".into(), flags: OpenFlags::CREAT_TRUNC }, 1);
        ex.exec(&mut m, &Op::Open { slot: 1, path: "/db".into(), flags: OpenFlags::CREAT_TRUNC }, 2);
        // Ancestor rename: the slot's path must follow the move; the
        // similarly-prefixed sibling must not.
        ex.exec(&mut m, &Op::Rename { old: "/d".into(), new: "/e".into() }, 3);
        let r = ex.exec(&mut m, &Op::Pwrite { slot: 0, off: 0, size: 4 }, 4);
        assert_eq!(r.target.as_deref(), Some("/e/f"));
        let r = ex.exec(&mut m, &Op::Write { slot: 1, size: 4 }, 5);
        assert_eq!(r.target.as_deref(), Some("/db"));
        // Direct rename of the opened file itself.
        ex.exec(&mut m, &Op::Rename { old: "/e/f".into(), new: "/g".into() }, 6);
        let r = ex.exec(&mut m, &Op::Fsync { slot: 0 }, 7);
        assert_eq!(r.target.as_deref(), Some("/g"));
    }

    #[test]
    fn reopening_a_slot_closes_previous_fd() {
        let mut m = ModelFs::new();
        let mut ex = Executor::new();
        ex.exec(&mut m, &Op::Open { slot: 0, path: "/a".into(), flags: OpenFlags::CREAT_TRUNC }, 0);
        ex.exec(&mut m, &Op::Open { slot: 0, path: "/b".into(), flags: OpenFlags::CREAT_TRUNC }, 1);
        let r = ex.exec(&mut m, &Op::Write { slot: 0, size: 4 }, 2);
        assert!(r.result.is_ok());
        assert_eq!(m.read_file("/b").unwrap().len(), 4);
        assert_eq!(m.read_file("/a").unwrap().len(), 0);
    }
}
