//! The bug registry: the paper's Table 1 corpus as switchable fault
//! injections.
//!
//! The headline result of the paper is a corpus of 23 unique
//! crash-consistency bugs (25 instances — two root causes are shared between
//! PMFS and WineFS, which share ancestry). This reproduction re-implements
//! each bug as a faithful analogue inside the corresponding file-system
//! crate, guarded by a [`BugSet`]: `BugSet::as_released()` reproduces the
//! versions the paper tested, `BugSet::fixed()` the patched versions, and
//! `BugSet::only(..)` isolates a single bug for targeted tests.
//!
//! [`bug_table`] carries the ground-truth metadata for every instance —
//! consequence, affected system calls, Logic/PM classification, whether ACE
//! can expose it, and the paper's Table 2 observation memberships — which the
//! evaluation harnesses print and cross-check.

use crate::fs::SyscallKind;

/// One of the 25 bug instances of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugId {
    /// NOVA: file system unmountable (recovery assertion too strict).
    B01,
    /// NOVA: file unreadable and undeletable (inode not flushed before dentry).
    B02,
    /// NOVA: file system unmountable (stale journal head replayed).
    B03,
    /// NOVA: rename atomicity broken — file disappears.
    B04,
    /// NOVA: rename atomicity broken — old file still present.
    B05,
    /// NOVA: link count incremented before new dentry appears.
    B06,
    /// NOVA: file data lost on truncate.
    B07,
    /// NOVA: file data lost on fallocate.
    B08,
    /// NOVA-Fortis: unreadable directory or file data loss (stale checksum).
    B09,
    /// NOVA-Fortis: file undeletable (replica inode diverged).
    B10,
    /// NOVA-Fortis: FS attempts to deallocate free blocks.
    B11,
    /// NOVA-Fortis: file unreadable after truncate (checksum range stale).
    B12,
    /// PMFS: file system unmountable (truncate-list replay before DRAM rebuild).
    B13,
    /// PMFS: write not synchronous (missing final fence).
    B14,
    /// WineFS: write not synchronous (same root cause as B14).
    B15,
    /// PMFS: out-of-bounds access during journal replay.
    B16,
    /// PMFS: file data lost (non-temporal tail line not flushed).
    B17,
    /// WineFS: file data lost (same root cause as B17).
    B18,
    /// WineFS: file unreadable/undeletable (per-CPU journal misindexed).
    B19,
    /// WineFS: data write not atomic in strict mode (unaligned tail).
    B20,
    /// SplitFS: metadata operation not synchronous (replay stops early).
    B21,
    /// SplitFS: file data lost (two descriptors, per-fd staging dropped).
    B22,
    /// SplitFS: file data lost (two descriptors, stale append base).
    B23,
    /// SplitFS: operation not synchronous (backend not forced durable).
    B24,
    /// SplitFS: rename atomicity broken — old file still present.
    B25,
}

impl BugId {
    /// All 25 instances in Table 1 order.
    pub const ALL: [BugId; 25] = [
        BugId::B01,
        BugId::B02,
        BugId::B03,
        BugId::B04,
        BugId::B05,
        BugId::B06,
        BugId::B07,
        BugId::B08,
        BugId::B09,
        BugId::B10,
        BugId::B11,
        BugId::B12,
        BugId::B13,
        BugId::B14,
        BugId::B15,
        BugId::B16,
        BugId::B17,
        BugId::B18,
        BugId::B19,
        BugId::B20,
        BugId::B21,
        BugId::B22,
        BugId::B23,
        BugId::B24,
        BugId::B25,
    ];

    /// The bug's number in Table 1 (1–25).
    pub fn number(self) -> u32 {
        self as u32 + 1
    }

    /// Looks up the bug's metadata.
    pub fn info(self) -> &'static BugInfo {
        &bug_table()[self as usize]
    }

    /// The index of this bug's bit in a [`BugSet`].
    fn bit(self) -> u32 {
        1u32 << (self as u32)
    }
}

impl std::fmt::Display for BugId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bug {}", self.number())
    }
}

/// Classification from Table 1: a PM bug is fixable by adding cache-line
/// flushes or store fences; a logic bug is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugKind {
    /// Higher-level logic or design error.
    Logic,
    /// PM programming error (missing flush/fence ordering).
    Pm,
}

impl std::fmt::Display for BugKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BugKind::Logic => write!(f, "Logic"),
            BugKind::Pm => write!(f, "PM"),
        }
    }
}

/// The file systems of the evaluation (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsName {
    /// NOVA (FAST '16).
    Nova,
    /// NOVA-Fortis (SOSP '17).
    NovaFortis,
    /// PMFS (EuroSys '14).
    Pmfs,
    /// WineFS (SOSP '21).
    WineFs,
    /// SplitFS (SOSP '19), strict mode.
    SplitFs,
    /// ext4-DAX (weak guarantees; control).
    Ext4Dax,
    /// XFS-DAX (weak guarantees; control).
    XfsDax,
}

impl std::fmt::Display for FsName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FsName::Nova => "NOVA",
            FsName::NovaFortis => "NOVA-Fortis",
            FsName::Pmfs => "PMFS",
            FsName::WineFs => "WineFS",
            FsName::SplitFs => "SplitFS",
            FsName::Ext4Dax => "ext4-DAX",
            FsName::XfsDax => "XFS-DAX",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for FsName {
    type Err = String;

    /// Parses the `Display` form back (case-insensitive) — repro bundles
    /// persist the display name.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        const ALL: [FsName; 7] = [
            FsName::Nova,
            FsName::NovaFortis,
            FsName::Pmfs,
            FsName::WineFs,
            FsName::SplitFs,
            FsName::Ext4Dax,
            FsName::XfsDax,
        ];
        ALL.into_iter()
            .find(|n| n.to_string().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown file system {s:?}"))
    }
}

/// Ground-truth metadata for one bug instance (one Table 1 row half).
#[derive(Debug, Clone)]
pub struct BugInfo {
    /// The instance id.
    pub id: BugId,
    /// The file system the instance lives in.
    pub fs: FsName,
    /// Consequence text (Table 1 wording).
    pub consequence: &'static str,
    /// System calls the bug affects.
    pub syscalls: &'static [SyscallKind],
    /// Logic or PM programming error.
    pub kind: BugKind,
    /// Whether ACE-generated workloads can expose it (19 of 23 can; bugs 19,
    /// 20, 22, 23 need the fuzzer).
    pub ace_findable: bool,
    /// Paper Table 2 observation numbers (1–7) this bug is associated with.
    pub observations: &'static [u8],
    /// Unique-fix group: instances sharing a root cause share a group. There
    /// are 23 groups — the paper's 23 unique bugs.
    pub fix_group: u32,
    /// Short root-cause description used in reports.
    pub root_cause: &'static str,
}

/// The full Table 1 corpus.
pub fn bug_table() -> &'static [BugInfo; 25] {
    use BugId::*;
    use BugKind::{Logic, Pm};
    use FsName::*;
    use SyscallKind::*;
    static TABLE: [BugInfo; 25] = [
        BugInfo {
            id: B01,
            fs: Nova,
            consequence: "File system unmountable",
            syscalls: &[All],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 3, 6],
            fix_group: 1,
            root_cause: "mount-time rebuild asserts the persistent generation counter \
                         matches the log scan; the counter is updated in place before \
                         the log entry is durable",
        },
        BugInfo {
            id: B02,
            fs: Nova,
            consequence: "File is unreadable and undeletable",
            syscalls: &[Mkdir, Creat],
            kind: Pm,
            ace_findable: true,
            observations: &[4, 6],
            fix_group: 2,
            root_cause: "new inode initialized with cached stores but never flushed \
                         before the parent dentry commits",
        },
        BugInfo {
            id: B03,
            fs: Nova,
            consequence: "File system unmountable",
            syscalls: &[Write, Pwrite, Link, Unlink, Rename],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 3, 5, 6, 7],
            fix_group: 3,
            root_cause: "journal recovery misinterprets the undo records' \
                         inode-table-relative addresses as absolute device addresses and \
                         aborts on the resulting out-of-range restore",
        },
        BugInfo {
            id: B04,
            fs: Nova,
            consequence: "Rename atomicity broken (file disappears)",
            syscalls: &[Rename],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 2, 5, 6, 7],
            fix_group: 4,
            root_cause: "rename invalidates the old dentry in place before the journal \
                         transaction creating the new dentry commits",
        },
        BugInfo {
            id: B05,
            fs: Nova,
            consequence: "Rename atomicity broken (old file still present)",
            syscalls: &[Rename],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 2, 5, 6, 7],
            fix_group: 5,
            root_cause: "old-dentry invalidation appended after the journal transaction \
                         commits, outside the transaction",
        },
        BugInfo {
            id: B06,
            fs: Nova,
            consequence: "Link count incremented before new file appears",
            syscalls: &[Link],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 2, 5, 6, 7],
            fix_group: 6,
            root_cause: "link bumps the inode link count via an in-place log-entry \
                         update before the new dentry is journaled",
        },
        BugInfo {
            id: B07,
            fs: Nova,
            consequence: "File data lost",
            syscalls: &[Truncate],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 2, 3],
            fix_group: 7,
            root_cause: "truncate zeroes the freed tail blocks before appending the \
                         set-size log entry",
        },
        BugInfo {
            id: B08,
            fs: Nova,
            consequence: "File data lost",
            syscalls: &[Falloc],
            kind: Logic,
            ace_findable: true,
            observations: &[1],
            fix_group: 8,
            root_cause: "fallocate logs zero-block mappings covering already-written \
                         offsets; log replay at mount clobbers the data",
        },
        BugInfo {
            id: B09,
            fs: NovaFortis,
            consequence: "Unreadable directory or file data loss",
            syscalls: &[Unlink, Rmdir, Truncate],
            kind: Pm,
            ace_findable: true,
            observations: &[4, 5, 6, 7],
            fix_group: 9,
            root_cause: "metadata update fenced without flushing the recomputed \
                         checksum; post-crash validation fails",
        },
        BugInfo {
            id: B10,
            fs: NovaFortis,
            consequence: "File is undeletable",
            syscalls: &[Write, Pwrite, Link, Rename],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 4, 5, 6, 7],
            fix_group: 10,
            root_cause: "replica inode updated outside the transaction; divergence makes \
                         the strict delete-path replica comparison fail",
        },
        BugInfo {
            id: B11,
            fs: NovaFortis,
            consequence: "FS attempts to deallocate free blocks",
            syscalls: &[Truncate],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 3, 4, 5, 6, 7],
            fix_group: 11,
            root_cause: "recovery replays a truncate record whose blocks were already \
                         freed before the crash (record not invalidated first)",
        },
        BugInfo {
            id: B12,
            fs: NovaFortis,
            consequence: "File is unreadable",
            syscalls: &[Truncate],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 4, 5, 6, 7],
            fix_group: 12,
            root_cause: "truncate changes the size without recomputing the file-data \
                         checksum over the new range",
        },
        BugInfo {
            id: B13,
            fs: Pmfs,
            consequence: "File system unmountable",
            syscalls: &[Truncate, Unlink, Rmdir, Rename],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 3, 5, 6, 7],
            fix_group: 13,
            root_cause: "truncate-list replay at mount dereferences the DRAM free list, \
                         which is rebuilt only after replay",
        },
        BugInfo {
            id: B14,
            fs: Pmfs,
            consequence: "Write is not synchronous",
            syscalls: &[Write, Pwrite],
            kind: Pm,
            ace_findable: true,
            observations: &[2, 6],
            fix_group: 14,
            root_cause: "in-place data write path returns without a final store fence",
        },
        BugInfo {
            id: B15,
            fs: WineFs,
            consequence: "Write is not synchronous",
            syscalls: &[Write, Pwrite],
            kind: Pm,
            ace_findable: true,
            observations: &[2, 6],
            fix_group: 14,
            root_cause: "in-place data write path returns without a final store fence \
                         (shared PMFS ancestry)",
        },
        BugInfo {
            id: B16,
            fs: Pmfs,
            consequence: "Out-of-bounds memory access",
            syscalls: &[All],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 3, 6],
            fix_group: 15,
            root_cause: "journal replay trusts a stale entry length left over from ring \
                         reuse and walks past the journal area",
        },
        BugInfo {
            id: B17,
            fs: Pmfs,
            consequence: "File data lost",
            syscalls: &[Write, Pwrite],
            kind: Pm,
            ace_findable: true,
            observations: &[6],
            fix_group: 16,
            root_cause: "non-temporal copy optimization leaves the partial tail cache \
                         line in the cache without a write-back",
        },
        BugInfo {
            id: B18,
            fs: WineFs,
            consequence: "File data lost",
            syscalls: &[Write, Pwrite],
            kind: Pm,
            ace_findable: true,
            observations: &[6],
            fix_group: 16,
            root_cause: "non-temporal copy optimization leaves the partial tail cache \
                         line in the cache without a write-back (shared PMFS ancestry)",
        },
        BugInfo {
            id: B19,
            fs: WineFs,
            consequence: "File is unreadable and undeletable",
            syscalls: &[All],
            kind: Logic,
            ace_findable: false,
            observations: &[1, 3, 5, 6, 7],
            fix_group: 17,
            root_cause: "recovery indexes the per-CPU journal array with a constant \
                         instead of the CPU id; journals of CPUs > 0 are never replayed",
        },
        BugInfo {
            id: B20,
            fs: WineFs,
            consequence: "Data write is not atomic in strict mode",
            syscalls: &[Write, Pwrite],
            kind: Logic,
            ace_findable: false,
            observations: &[1, 5, 6, 7],
            fix_group: 18,
            root_cause: "strict-mode atomic write journals whole 8-byte words only; a \
                         non-8-byte-aligned tail is written in place",
        },
        BugInfo {
            id: B21,
            fs: SplitFs,
            consequence: "Operation is not synchronous",
            syscalls: &[AllMetadata],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 6],
            fix_group: 19,
            root_cause: "operation-log replay uses the count of data entries as the end \
                         marker, dropping trailing metadata entries",
        },
        BugInfo {
            id: B22,
            fs: SplitFs,
            consequence: "File data lost",
            syscalls: &[Write, Pwrite],
            kind: Logic,
            ace_findable: false,
            observations: &[1, 6],
            fix_group: 20,
            root_cause: "relink replay keys staged extents by file and keeps only the \
                         most recent descriptor's extents",
        },
        BugInfo {
            id: B23,
            fs: SplitFs,
            consequence: "File data lost",
            syscalls: &[Write, Pwrite],
            kind: Logic,
            ace_findable: false,
            observations: &[1, 6],
            fix_group: 21,
            root_cause: "append through a second descriptor logs a stale base offset \
                         captured at open time; replay overlaps the first descriptor's \
                         appends",
        },
        BugInfo {
            id: B24,
            fs: SplitFs,
            consequence: "Operation is not synchronous",
            syscalls: &[All],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 3, 6],
            fix_group: 22,
            root_cause: "operations routed to the kernel component skip the forced \
                         journal commit that strict mode requires",
        },
        BugInfo {
            id: B25,
            fs: SplitFs,
            consequence: "Rename atomicity broken (old file still present)",
            syscalls: &[Rename],
            kind: Logic,
            ace_findable: true,
            observations: &[1, 3, 6],
            fix_group: 23,
            root_cause: "staged extents keyed by the old path are re-relinked after the \
                         kernel component already renamed, re-creating the old name",
        },
    ];
    &TABLE
}

/// A set of enabled (present) bug instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BugSet(u32);

impl BugSet {
    /// All bugs present — the file-system versions the paper tested.
    pub fn as_released() -> Self {
        BugSet((1u32 << 25) - 1)
    }

    /// All bugs fixed.
    pub fn fixed() -> Self {
        BugSet(0)
    }

    /// Only the listed bugs present.
    pub fn only(bugs: &[BugId]) -> Self {
        let mut s = BugSet(0);
        for &b in bugs {
            s = s.with(b);
        }
        s
    }

    /// Returns a copy with `bug` enabled.
    pub fn with(self, bug: BugId) -> Self {
        BugSet(self.0 | bug.bit())
    }

    /// Returns a copy with `bug` disabled (fixed).
    pub fn without(self, bug: BugId) -> Self {
        BugSet(self.0 & !bug.bit())
    }

    /// Whether `bug` is present.
    pub fn has(self, bug: BugId) -> bool {
        self.0 & bug.bit() != 0
    }

    /// Number of enabled instances.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// The enabled instances.
    pub fn iter(self) -> impl Iterator<Item = BugId> {
        BugId::ALL.into_iter().filter(move |b| self.has(*b))
    }
}

impl Default for BugSet {
    /// Defaults to the as-released (buggy) configuration, matching the
    /// versions under test in the paper.
    fn default() -> Self {
        BugSet::as_released()
    }
}

/// Number of unique bugs (fix groups) in the corpus — the paper's 23.
pub fn unique_bug_count() -> usize {
    let mut groups: Vec<u32> = bug_table().iter().map(|b| b.fix_group).collect();
    groups.sort_unstable();
    groups.dedup();
    groups.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_instances_twenty_three_unique() {
        assert_eq!(BugId::ALL.len(), 25);
        assert_eq!(bug_table().len(), 25);
        assert_eq!(unique_bug_count(), 23);
    }

    #[test]
    fn table_ids_are_in_order() {
        for (i, info) in bug_table().iter().enumerate() {
            assert_eq!(info.id as usize, i);
            assert_eq!(info.id.number(), i as u32 + 1);
        }
    }

    #[test]
    fn four_bugs_are_fuzzer_only() {
        let fuzzer_only: Vec<BugId> =
            bug_table().iter().filter(|b| !b.ace_findable).map(|b| b.id).collect();
        assert_eq!(fuzzer_only, vec![BugId::B19, BugId::B20, BugId::B22, BugId::B23]);
    }

    #[test]
    fn nineteen_of_twenty_three_unique_bugs_are_logic() {
        // Observation 1: 19/23 unique bugs are logic errors.
        let mut logic_groups: Vec<u32> = bug_table()
            .iter()
            .filter(|b| b.kind == BugKind::Logic)
            .map(|b| b.fix_group)
            .collect();
        logic_groups.sort_unstable();
        logic_groups.dedup();
        assert_eq!(logic_groups.len(), 19);
    }

    #[test]
    fn per_fs_counts_match_paper() {
        // Paper §4.4: 8 NOVA, 4 NOVA-Fortis, 2 PMFS, 2 WineFS, 2 shared
        // PMFS+WineFS, 5 SplitFS.
        let count = |fs: FsName| bug_table().iter().filter(|b| b.fs == fs).count();
        assert_eq!(count(FsName::Nova), 8);
        assert_eq!(count(FsName::NovaFortis), 4);
        assert_eq!(count(FsName::Pmfs), 4); // 2 own + 2 shared instances
        assert_eq!(count(FsName::WineFs), 4); // 2 own + 2 shared instances
        assert_eq!(count(FsName::SplitFs), 5);
        assert_eq!(count(FsName::Ext4Dax), 0);
        assert_eq!(count(FsName::XfsDax), 0);
    }

    #[test]
    fn bugset_operations() {
        let s = BugSet::fixed().with(BugId::B04).with(BugId::B05);
        assert!(s.has(BugId::B04));
        assert!(!s.has(BugId::B01));
        assert_eq!(s.count(), 2);
        assert_eq!(s.without(BugId::B04).count(), 1);
        assert_eq!(BugSet::as_released().count(), 25);
        assert_eq!(BugSet::default(), BugSet::as_released());
        let ids: Vec<BugId> = BugSet::only(&[BugId::B19]).iter().collect();
        assert_eq!(ids, vec![BugId::B19]);
    }

    #[test]
    fn observation_2_lists_six_in_place_bugs() {
        // Paper: six bugs are caused by in-place updates (4, 5, 6, 7, 14, 15).
        let obs2: Vec<u32> = bug_table()
            .iter()
            .filter(|b| b.observations.contains(&2))
            .map(|b| b.id.number())
            .collect();
        assert_eq!(obs2, vec![4, 5, 6, 7, 14, 15]);
    }

    #[test]
    fn observation_5_and_7_cover_eleven_mid_syscall_instances() {
        // Table 2: observations 5 and 7 list the same 11 instances
        // (3-6, 9-13, 19, 20).
        let list = |n: u8| -> Vec<u32> {
            bug_table()
                .iter()
                .filter(|b| b.observations.contains(&n))
                .map(|b| b.id.number())
                .collect()
        };
        assert_eq!(list(5), vec![3, 4, 5, 6, 9, 10, 11, 12, 13, 19, 20]);
        assert_eq!(list(5), list(7));
    }

    #[test]
    fn fs_name_parses_its_display_form() {
        for fs in [
            FsName::Nova,
            FsName::NovaFortis,
            FsName::Pmfs,
            FsName::WineFs,
            FsName::SplitFs,
            FsName::Ext4Dax,
            FsName::XfsDax,
        ] {
            assert_eq!(fs.to_string().parse::<FsName>(), Ok(fs));
            assert_eq!(fs.to_string().to_lowercase().parse::<FsName>(), Ok(fs));
        }
        assert!("btrfs".parse::<FsName>().is_err());
    }
}
