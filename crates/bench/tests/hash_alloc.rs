//! Allocator regression for the incremental `state_key` path.
//!
//! `chipmunk::crashgen::state_key` hashes each crash state's surviving
//! bytes straight out of the borrowed pending-write data, one 8-byte word
//! per step (`pmem::span_key`). The property this test pins is the one the
//! `hash_speed` example measures but cannot assert: keying a subset never
//! materializes the crash image. An implementation that rebuilt the byte
//! range spanned by the writes — the natural naive one — would allocate
//! proportionally to the *span* (here, a gigabyte); the incremental scan
//! allocates only small per-subset scratch (the sorted index order and the
//! segment list), independent of where on the device the writes landed.
//!
//! The test runs in its own binary so it can install a counting global
//! allocator without affecting other suites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use chipmunk::crashgen::{state_key, PendingWrite};

struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn state_key_allocation_is_independent_of_write_span() {
    // 16 in-flight writes of 64 bytes each, spread across a 1 GiB device
    // span. Any image-materializing implementation has to touch the span.
    const SPAN: u64 = 1 << 30;
    const NW: usize = 16;
    let writes: Vec<PendingWrite> = (0..NW as u64)
        .map(|i| PendingWrite {
            off: i * (SPAN / NW as u64),
            data: (0..64).map(|b| (i as u8).wrapping_mul(31).wrapping_add(b)) .collect(),
            nt: true,
        })
        .collect();

    // Warm up once so one-time lazy allocations don't skew the measurement.
    let warm = state_key(&writes, &[0, 5, 11]);

    let subsets: Vec<Vec<usize>> =
        (0..200).map(|s| (0..NW).filter(|i| (s >> (i % 8)) & 1 == 1).collect()).collect();
    let before = ALLOCATED.load(Relaxed);
    let mut acc = warm;
    for subset in &subsets {
        acc ^= state_key(&writes, subset);
    }
    let after = ALLOCATED.load(Relaxed);
    assert_ne!(acc, 0, "keys must actually be computed");

    let per_call = (after - before) / subsets.len() as u64;
    // Scratch per call is O(subset length): a sorted index vector and a
    // segment list — a few hundred bytes. Give 100x headroom; rebuilding
    // even one write's span of the image would blow through it, and a full
    // span materialization is five orders of magnitude over.
    assert!(
        per_call < 64 * 1024,
        "state_key allocated {per_call} bytes/call — is it materializing images?"
    );
}
