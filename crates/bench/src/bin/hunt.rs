//! Hunts one injected bug (by Table 1 number) with both frontends, printing
//! time-to-find, work counters, and dedup hit counts. The measurement tool
//! behind the "Parallel scaling" section of EXPERIMENTS.md — and, with
//! `--shrink` / `--repro`, the front door to minimized repro bundles.
//!
//! ```sh
//! cargo run --release -p bench --bin hunt -- <bug#> [threads] [fuzz_budget] [seed] [nodedup] [--json <path>] [--shrink] [--out <path>]
//! cargo run --release -p bench --bin hunt -- --repro <bundle.json>
//! cargo run --release -p bench --bin hunt -- <bug#> [threads] [fuzz_budget] [seed] --store <dir>
//! cargo run --release -p bench --bin hunt -- --resume <dir> [threads]
//! ```
//!
//! With `--json <path>`, a machine-readable summary — per-phase wall times,
//! dedup/memo/prefix hit counters, and states/sec — is also written to
//! `path` (see `BENCH_hunt.json` for a committed baseline).
//!
//! With `--shrink`, the first find is delta-debugged down to a minimal
//! `(workload, crash subset)` pair and written as a self-contained repro
//! bundle (default `repro-bug<N>.json`; override with `--out`). With
//! `--repro <file>`, the bundle is replayed instead of hunting: exit status
//! 0 iff the replay reproduces the expected violation class, 1 when it
//! loads but fails to reproduce, 2 when the bundle itself is malformed
//! (the error names the file, byte offset, and recovery action).
//!
//! With `--store <dir>`, the hunt runs as a persistent campaign targeting
//! just that bug (see `bench::campaign`): an ACE seq-1 sweep plus the fuzz
//! budget, journaled per workload — a killed hunt rerun with the same
//! `--store` (or with `--resume <dir>`) continues at the exact workload
//! index with a warm prefix cache instead of starting over.
//!
//! Unknown flags, malformed numbers, and extra arguments are fatal (exit 2)
//! rather than silently ignored.

use bench::campaign::{
    runner::{self, RunOpts},
    store::CampaignStore,
    CampaignSpec,
};
use bench::{
    fmt_dur, hunt_json, hunt_with_ace, hunt_with_fuzzer, jsonout::Json, shrink_to_bundle,
    HuntResult, ReproBundle,
};
use chipmunk::TestConfig;
use vfs::bugs::bug_table;

fn usage() -> ! {
    eprintln!(
        "usage: hunt [bug#] [threads] [fuzz_budget] [seed] [nodedup] [--json <path>] [--shrink] [--out <path>]"
    );
    eprintln!("       hunt --repro <bundle.json>");
    eprintln!("       hunt [bug#] [threads] [fuzz_budget] [seed] --store <dir>");
    eprintln!("       hunt --resume <dir> [threads]");
    std::process::exit(2);
}

fn flag_value(flag: &str, it: &mut impl Iterator<Item = String>) -> String {
    it.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    })
}

fn parse_pos<T: std::str::FromStr>(v: Option<&String>, what: &str, default: T) -> T {
    match v {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("bad {what}: {s:?}");
            usage()
        }),
    }
}

fn main() {
    let mut pos: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut repro_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut store_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut do_shrink = false;
    let mut nodedup = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = Some(flag_value("--json", &mut it)),
            "--repro" => repro_path = Some(flag_value("--repro", &mut it)),
            "--out" => out_path = Some(flag_value("--out", &mut it)),
            "--store" => store_path = Some(flag_value("--store", &mut it)),
            "--resume" => resume_path = Some(flag_value("--resume", &mut it)),
            "--shrink" => do_shrink = true,
            "nodedup" => nodedup = true,
            s if s.starts_with('-') => {
                eprintln!("unknown flag {s:?}");
                usage();
            }
            _ => pos.push(a),
        }
    }
    if pos.len() > 4 {
        eprintln!("unexpected argument {:?}", pos[4]);
        usage();
    }
    if out_path.is_some() && !do_shrink {
        eprintln!("--out only makes sense with --shrink");
        usage();
    }

    // Replay mode: no hunting, no other arguments.
    if let Some(path) = repro_path {
        if do_shrink || json_path.is_some() || nodedup || !pos.is_empty() {
            eprintln!("--repro takes no other arguments");
            usage();
        }
        // A malformed bundle exits 2 (the error names the file, the byte
        // offset of the first unparsable input, and the recovery action);
        // a bundle that loads but fails to reproduce exits 1.
        let bundle = ReproBundle::load(&path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        });
        let out = bundle.replay().unwrap_or_else(|e| {
            eprintln!("error: replay failed: {e}");
            std::process::exit(1);
        });
        println!(
            "repro {path}: {} on {} | expected {}{} | got {}{}{}",
            bundle.workload.name,
            bundle.fs,
            bundle.expect_class,
            bundle.expect_stage.map(|s| format!(" @ {s:?}")).unwrap_or_default(),
            out.class,
            out.stage.map(|s| format!(" @ {s:?}")).unwrap_or_default(),
            if out.ok { " | OK" } else { " | MISMATCH" },
        );
        if !out.detail.is_empty() {
            println!("  {}", out.detail);
        }
        std::process::exit(if out.ok { 0 } else { 1 });
    }

    // Store-backed modes: the hunt as a persistent, resumable campaign.
    if store_path.is_some() || resume_path.is_some() {
        if do_shrink || json_path.is_some() || nodedup || out_path.is_some() {
            eprintln!("--store/--resume cannot be combined with --shrink/--json/nodedup");
            usage();
        }
        if store_path.is_some() && resume_path.is_some() {
            eprintln!("--store and --resume are mutually exclusive");
            usage();
        }
        if let Some(dir) = resume_path {
            if pos.len() > 1 {
                eprintln!("unexpected argument {:?}", pos[1]);
                usage();
            }
            let threads: usize = parse_pos(pos.first(), "thread count", 1);
            let store = CampaignStore::open(std::path::Path::new(&dir)).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            });
            run_store_hunt(store, threads);
        }
        let dir = store_path.expect("checked above");
        let number: u32 = parse_pos(pos.first(), "bug number", 14);
        let threads: usize = parse_pos(pos.get(1), "thread count", 1);
        let budget: u64 = parse_pos(pos.get(2), "fuzz budget", 4000);
        let seed: u64 = parse_pos(pos.get(3), "seed", 0xf16 + number as u64);
        let info = bug_table()
            .iter()
            .find(|b| b.id.number() == number)
            .unwrap_or_else(|| {
                eprintln!("no bug #{number} in the Table 1 corpus");
                usage()
            });
        let spec = CampaignSpec {
            fs: info.fs,
            bug: Some(number),
            // ACE front end only helps when the bug is ACE-findable; keep a
            // single-workload stub phase otherwise so the plan shape (ACE
            // tasks then fuzz tasks) stays uniform.
            seq1_take: if info.ace_findable { 0 } else { 1 },
            seq2_step: 0,
            fuzz_budget: budget,
            fuzz_seed: seed,
            ..CampaignSpec::default()
        };
        let store = CampaignStore::open_or_init(std::path::Path::new(&dir), &spec)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            });
        run_store_hunt(store, threads);
    }

    let number: u32 = parse_pos(pos.first(), "bug number", 14);
    let threads: usize = parse_pos(pos.get(1), "thread count", 1);
    let budget: u64 = parse_pos(pos.get(2), "fuzz budget", 4000);
    let seed: u64 = parse_pos(pos.get(3), "seed", 0xf16 + number as u64);
    let dedup = !nodedup;

    let info = bug_table()
        .iter()
        .find(|b| b.id.number() == number)
        .unwrap_or_else(|| panic!("no bug #{number} in the Table 1 corpus"));
    // With --shrink, enumerate subsets large-first: the first hit then
    // carries a maximal write subset (instead of the usually-minimal one
    // small-first stops at), which is the raw material the subset ddmin pass
    // minimizes.
    let ace_cfg = TestConfig {
        stop_on_first: true,
        dedup,
        large_first_subsets: do_shrink,
        ..TestConfig::default()
    }
    .with_threads(threads);
    let fuzz_cfg = TestConfig { dedup, large_first_subsets: do_shrink, ..TestConfig::fuzzing() }
        .with_threads(threads);

    println!("bug {number} on {} (threads = {threads}, dedup = {dedup})", info.fs);
    let ace = if info.ace_findable {
        let (hit, w, s) = hunt_with_ace(info.id, &ace_cfg, 400);
        match &hit {
            Some(h) => println!(
                "  ACE : found in {:>8} | {w} workloads, {s} states, {} dedup, {} memo, {} prefix hits, {} subtrees (depth {}), per-worker {:?} | {}",
                fmt_dur(h.elapsed),
                h.dedup_hits,
                h.memo_hits,
                h.prefix_hits,
                h.sched_subtrees,
                h.sched_subtree_max_depth,
                h.per_worker_prefix_hits,
                h.class
            ),
            None => println!("  ACE : not found | {w} workloads, {s} states"),
        }
        Some((hit, w, s))
    } else {
        println!("  ACE : not findable (fuzzer-only bug)");
        None
    };
    let (fuzz_hit, fuzz_w, fuzz_s) = hunt_with_fuzzer(info.id, &fuzz_cfg, seed, budget);
    match &fuzz_hit {
        Some(h) => println!(
            "  fuzz: found in {:>8} | {fuzz_w} workloads, {fuzz_s} states, {} dedup hits | {}",
            fmt_dur(h.elapsed),
            h.dedup_hits,
            h.class
        ),
        None => {
            println!("  fuzz: not found within {budget} | {fuzz_w} workloads, {fuzz_s} states");
        }
    }

    if let Some(path) = &json_path {
        let doc = Json::Obj(vec![
            ("bug", Json::U(number as u64)),
            ("fs", Json::S(info.fs.to_string())),
            ("threads", Json::U(threads as u64)),
            ("dedup", Json::B(dedup)),
            ("fuzz_budget", Json::U(budget)),
            (
                "ace",
                match &ace {
                    Some((hit, w, s)) => hunt_json(hit.as_ref(), *w, *s),
                    None => Json::Null,
                },
            ),
            ("fuzz", hunt_json(fuzz_hit.as_ref(), fuzz_w, fuzz_s)),
        ]);
        bench::jsonout::write_atomic(path, &doc.render()).expect("write --json output");
        eprintln!("wrote {path}");
    }

    if do_shrink {
        // Prefer the fuzzer find — fuzzing finds are the heavyweight ones
        // shrinking exists for (ACE workloads are ≤ 3 ops by construction);
        // fall back to the ACE find.
        let find: Option<(&HuntResult, &TestConfig)> = match (&fuzz_hit, &ace) {
            (Some(h), _) => Some((h, &fuzz_cfg)),
            (_, Some((Some(h), _, _))) => Some((h, &ace_cfg)),
            _ => None,
        };
        let Some((hit, cfg)) = find else {
            eprintln!("  shrink: no find to shrink");
            std::process::exit(1);
        };
        let (bundle, stats) =
            shrink_to_bundle(info.fs, &[info.id], &hit.workload, &hit.report, cfg, seed)
                .unwrap_or_else(|e| {
                    eprintln!("error: shrink failed: {e}");
                    std::process::exit(1);
                });
        let path = out_path.unwrap_or_else(|| format!("repro-bug{number}.json"));
        bundle.save(&path).expect("write repro bundle");
        println!(
            "  shrink: ops {} -> {}, subset {} -> {} ({} workload + {} state candidates) | wrote {path}",
            stats.ops_before,
            stats.ops_after,
            stats.subset_before,
            stats.subset_after,
            stats.op_candidates,
            stats.state_candidates,
        );
    }
}

/// Runs (or resumes) a store-backed single-bug hunt campaign to completion
/// in-process, prints the merged summary and first find, and exits — status
/// 0 when the sweep finished; store errors exit with their mapped codes
/// (2 corrupt, 3 degraded/out of space, 1 other).
fn run_store_hunt(store: CampaignStore, threads: usize) -> ! {
    let bug = store.spec.bug.unwrap_or(0);
    println!(
        "store hunt for bug {bug} on {} at {} | {} tasks ({} ace + {} fuzz) | threads = {threads}",
        store.spec.fs,
        store.dir.display(),
        store.spec.total_tasks(),
        store.spec.ace_tasks(),
        store.spec.fuzz_tasks(),
    );
    let opts = RunOpts { threads, ..RunOpts::default() };
    let (sum, merged) = runner::run_and_merge(&store, &opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    });
    runner::write_summary(&store, &opts, &sum);
    println!(
        "{} workloads ({} resumed from the journal, {} rewarm runs) | \
         {} crash states, prefix ops saved {} | fingerprint {:016x}",
        merged.workloads,
        sum.journal_workloads_replayed,
        sum.rewarm_runs,
        merged.totals[1],
        merged.totals[5],
        merged.fingerprint,
    );
    // First find in canonical order, if any.
    let find = (0..store.spec.total_tasks())
        .filter_map(|id| store.load_result(id).ok().flatten())
        .flatten()
        .find_map(|r| r.reports.into_iter().next());
    match find {
        Some(r) => println!(
            "found: [{}] {} | {} @ op {} | {}",
            r.class, r.workload, r.op_desc, r.op_seq, r.detail
        ),
        None => println!("not found within the campaign budget"),
    }
    std::process::exit(0);
}
