//! A plain in-memory reference file system.
//!
//! [`ModelFs`] implements the crash-free POSIX semantics of the tested
//! system calls with no persistence machinery at all. It serves as the
//! ground truth in property tests: any PM file system, run crash-free on a
//! random workload, must behave observably like the model (same results,
//! same final tree). It is intentionally simple — correctness by
//! obviousness.

use std::collections::{BTreeMap, HashMap};

use crate::{
    error::{FsError, FsResult},
    fs::FileSystem,
    path::{components, is_path_prefix, split_parent},
    types::{DirEntry, FallocMode, Fd, FileType, Metadata, OpenFlags},
};

/// Block size used for the `blocks` metadata field.
const BLOCK: u64 = 4096;

#[derive(Debug, Clone)]
enum Node {
    File { data: Vec<u8>, nlink: u64 },
    Dir { entries: BTreeMap<String, u64> },
}

#[derive(Debug, Clone, Copy)]
struct OpenFile {
    ino: u64,
    offset: u64,
    append: bool,
}

/// The in-memory reference file system.
#[derive(Debug, Clone)]
pub struct ModelFs {
    nodes: HashMap<u64, Node>,
    next_ino: u64,
    fds: HashMap<u64, OpenFile>,
    next_fd: u64,
}

impl Default for ModelFs {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelFs {
    /// Creates an empty file system with just the root directory.
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(1, Node::Dir { entries: BTreeMap::new() });
        ModelFs { nodes, next_ino: 2, fds: HashMap::new(), next_fd: 3 }
    }

    fn resolve(&self, path: &str) -> FsResult<u64> {
        let mut cur = 1u64;
        for c in components(path)? {
            match self.nodes.get(&cur) {
                Some(Node::Dir { entries }) => {
                    cur = *entries.get(c).ok_or(FsError::NotFound)?;
                }
                Some(Node::File { .. }) => return Err(FsError::NotDir),
                None => return Err(FsError::NotFound),
            }
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(u64, &'p str)> {
        let (parents, name) = split_parent(path)?;
        let mut cur = 1u64;
        for c in parents {
            match self.nodes.get(&cur) {
                Some(Node::Dir { entries }) => {
                    cur = *entries.get(c).ok_or(FsError::NotFound)?;
                }
                Some(Node::File { .. }) => return Err(FsError::NotDir),
                None => return Err(FsError::NotFound),
            }
        }
        match self.nodes.get(&cur) {
            Some(Node::Dir { .. }) => Ok((cur, name)),
            _ => Err(FsError::NotDir),
        }
    }

    fn dir_entries(&self, ino: u64) -> FsResult<&BTreeMap<String, u64>> {
        match self.nodes.get(&ino) {
            Some(Node::Dir { entries }) => Ok(entries),
            Some(Node::File { .. }) => Err(FsError::NotDir),
            None => Err(FsError::NotFound),
        }
    }

    fn dir_entries_mut(&mut self, ino: u64) -> FsResult<&mut BTreeMap<String, u64>> {
        match self.nodes.get_mut(&ino) {
            Some(Node::Dir { entries }) => Ok(entries),
            Some(Node::File { .. }) => Err(FsError::NotDir),
            None => Err(FsError::NotFound),
        }
    }

    fn open_count(&self, ino: u64) -> usize {
        self.fds.values().filter(|f| f.ino == ino).count()
    }

    fn drop_file_if_unused(&mut self, ino: u64) {
        let gone = matches!(self.nodes.get(&ino), Some(Node::File { nlink: 0, .. }))
            && self.open_count(ino) == 0;
        if gone {
            self.nodes.remove(&ino);
        }
    }

    fn file_data_mut(&mut self, ino: u64) -> FsResult<&mut Vec<u8>> {
        match self.nodes.get_mut(&ino) {
            Some(Node::File { data, .. }) => Ok(data),
            Some(Node::Dir { .. }) => Err(FsError::IsDir),
            None => Err(FsError::BadFd),
        }
    }

    fn fd_ino(&self, fd: Fd) -> FsResult<u64> {
        Ok(self.fds.get(&fd.0).ok_or(FsError::BadFd)?.ino)
    }

    /// Counts live files and directories (for tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl FileSystem for ModelFs {
    fn open(&mut self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        let ino = match self.resolve(path) {
            Ok(ino) => {
                if flags.create && flags.excl {
                    return Err(FsError::Exists);
                }
                if matches!(self.nodes.get(&ino), Some(Node::Dir { .. }))
                    && (flags.trunc || flags.create)
                {
                    return Err(FsError::IsDir);
                }
                if flags.trunc {
                    *self.file_data_mut(ino)? = Vec::new();
                }
                ino
            }
            Err(FsError::NotFound) if flags.create => {
                let (parent, name) = self.resolve_parent(path)?;
                let ino = self.next_ino;
                self.next_ino += 1;
                self.nodes.insert(ino, Node::File { data: Vec::new(), nlink: 1 });
                self.dir_entries_mut(parent)?.insert(name.to_string(), ino);
                ino
            }
            Err(e) => return Err(e),
        };
        if matches!(self.nodes.get(&ino), Some(Node::Dir { .. })) {
            // Directories cannot be opened for writing in this interface.
            return Err(FsError::IsDir);
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(fd, OpenFile { ino, offset: 0, append: flags.append });
        Ok(Fd(fd))
    }

    fn close(&mut self, fd: Fd) -> FsResult<()> {
        let of = self.fds.remove(&fd.0).ok_or(FsError::BadFd)?;
        self.drop_file_if_unused(of.ino);
        Ok(())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.dir_entries(parent)?.contains_key(name) {
            return Err(FsError::Exists);
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.nodes.insert(ino, Node::Dir { entries: BTreeMap::new() });
        self.dir_entries_mut(parent)?.insert(name.to_string(), ino);
        Ok(())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let ino = *self.dir_entries(parent)?.get(name).ok_or(FsError::NotFound)?;
        match self.nodes.get(&ino) {
            Some(Node::Dir { entries }) if entries.is_empty() => {}
            Some(Node::Dir { .. }) => return Err(FsError::NotEmpty),
            Some(Node::File { .. }) => return Err(FsError::NotDir),
            None => return Err(FsError::NotFound),
        }
        self.dir_entries_mut(parent)?.remove(name);
        self.nodes.remove(&ino);
        Ok(())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        let (parent, name) = self.resolve_parent(path)?;
        let ino = *self.dir_entries(parent)?.get(name).ok_or(FsError::NotFound)?;
        match self.nodes.get_mut(&ino) {
            Some(Node::File { nlink, .. }) => {
                *nlink -= 1;
            }
            Some(Node::Dir { .. }) => return Err(FsError::IsDir),
            None => return Err(FsError::NotFound),
        }
        self.dir_entries_mut(parent)?.remove(name);
        self.drop_file_if_unused(ino);
        Ok(())
    }

    fn link(&mut self, old: &str, new: &str) -> FsResult<()> {
        let ino = self.resolve(old)?;
        if matches!(self.nodes.get(&ino), Some(Node::Dir { .. })) {
            return Err(FsError::IsDir);
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.dir_entries(parent)?.contains_key(name) {
            return Err(FsError::Exists);
        }
        if let Some(Node::File { nlink, .. }) = self.nodes.get_mut(&ino) {
            *nlink += 1;
        }
        self.dir_entries_mut(parent)?.insert(name.to_string(), ino);
        Ok(())
    }

    fn rename(&mut self, old: &str, new: &str) -> FsResult<()> {
        let src_ino = self.resolve(old)?;
        let src_is_dir = matches!(self.nodes.get(&src_ino), Some(Node::Dir { .. }));
        if src_is_dir && is_path_prefix(old, new) && old != new {
            return Err(FsError::Invalid);
        }
        let (src_parent, src_name) = self.resolve_parent(old)?;
        let (dst_parent, dst_name) = self.resolve_parent(new)?;
        if old == new {
            return Ok(());
        }
        // Handle an existing destination.
        if let Some(&dst_ino) = self.dir_entries(dst_parent)?.get(dst_name) {
            if dst_ino == src_ino {
                return Ok(()); // hard links to the same inode: no-op
            }
            match (src_is_dir, self.nodes.get(&dst_ino)) {
                (true, Some(Node::Dir { entries })) => {
                    if !entries.is_empty() {
                        return Err(FsError::NotEmpty);
                    }
                    self.nodes.remove(&dst_ino);
                }
                (true, Some(Node::File { .. })) => return Err(FsError::NotDir),
                (false, Some(Node::Dir { .. })) => return Err(FsError::IsDir),
                (false, Some(Node::File { .. })) => {
                    if let Some(Node::File { nlink, .. }) = self.nodes.get_mut(&dst_ino) {
                        *nlink -= 1;
                    }
                    self.dir_entries_mut(dst_parent)?.remove(dst_name);
                    self.drop_file_if_unused(dst_ino);
                }
                (_, None) => return Err(FsError::NotFound),
            }
        }
        self.dir_entries_mut(src_parent)?.remove(src_name);
        self.dir_entries_mut(dst_parent)?.insert(dst_name.to_string(), src_ino);
        Ok(())
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        let ino = self.resolve(path)?;
        let data = self.file_data_mut(ino).map_err(|e| {
            if e == FsError::BadFd {
                FsError::NotFound
            } else {
                e
            }
        })?;
        data.resize(size as usize, 0);
        Ok(())
    }

    fn fallocate(&mut self, fd: Fd, mode: FallocMode, off: u64, len: u64) -> FsResult<()> {
        if len == 0 {
            return Err(FsError::Invalid);
        }
        let ino = self.fd_ino(fd)?;
        let data = self.file_data_mut(ino)?;
        let end = (off + len) as usize;
        match mode {
            FallocMode::Allocate => {
                if data.len() < end {
                    data.resize(end, 0);
                }
            }
            FallocMode::KeepSize => {
                // Allocation without size change has no observable effect in
                // the model.
            }
            FallocMode::ZeroRange | FallocMode::PunchHole => {
                let z_end = end.min(data.len());
                for b in data.iter_mut().take(z_end).skip(off as usize) {
                    *b = 0;
                }
            }
        }
        Ok(())
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let of = *self.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        let ino = of.ino;
        let off = if of.append {
            match self.nodes.get(&ino) {
                Some(Node::File { data, .. }) => data.len() as u64,
                _ => return Err(FsError::BadFd),
            }
        } else {
            of.offset
        };
        let n = self.write_at(ino, off, data)?;
        if let Some(f) = self.fds.get_mut(&fd.0) {
            f.offset = off + n as u64;
        }
        Ok(n)
    }

    fn pwrite(&mut self, fd: Fd, off: u64, data: &[u8]) -> FsResult<usize> {
        let ino = self.fd_ino(fd)?;
        self.write_at(ino, off, data)
    }

    fn pread(&self, fd: Fd, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let ino = self.fd_ino(fd)?;
        match self.nodes.get(&ino) {
            Some(Node::File { data, .. }) => {
                if off as usize >= data.len() {
                    return Ok(0);
                }
                let n = buf.len().min(data.len() - off as usize);
                buf[..n].copy_from_slice(&data[off as usize..off as usize + n]);
                Ok(n)
            }
            _ => Err(FsError::BadFd),
        }
    }

    fn fsync(&mut self, fd: Fd) -> FsResult<()> {
        self.fd_ino(fd).map(|_| ())
    }

    fn sync(&mut self) -> FsResult<()> {
        Ok(())
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let ino = self.resolve(path)?;
        match self.nodes.get(&ino) {
            Some(Node::File { data, nlink }) => Ok(Metadata {
                ino,
                ftype: FileType::Regular,
                nlink: *nlink,
                size: data.len() as u64,
                blocks: (data.len() as u64).div_ceil(BLOCK),
            }),
            Some(Node::Dir { entries }) => {
                let subdirs = entries
                    .values()
                    .filter(|i| matches!(self.nodes.get(i), Some(Node::Dir { .. })))
                    .count() as u64;
                Ok(Metadata {
                    ino,
                    ftype: FileType::Directory,
                    nlink: 2 + subdirs,
                    size: entries.len() as u64,
                    blocks: 1,
                })
            }
            None => Err(FsError::NotFound),
        }
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.resolve(path)?;
        let entries = self.dir_entries(ino)?;
        Ok(entries
            .iter()
            .map(|(name, &ino)| DirEntry {
                name: name.clone(),
                ino,
                ftype: match self.nodes.get(&ino) {
                    Some(Node::Dir { .. }) => FileType::Directory,
                    _ => FileType::Regular,
                },
            })
            .collect())
    }

    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let ino = self.resolve(path)?;
        match self.nodes.get(&ino) {
            Some(Node::File { data, .. }) => Ok(data.clone()),
            Some(Node::Dir { .. }) => Err(FsError::IsDir),
            None => Err(FsError::NotFound),
        }
    }
}

impl ModelFs {
    fn write_at(&mut self, ino: u64, off: u64, buf: &[u8]) -> FsResult<usize> {
        let data = self.file_data_mut(ino)?;
        let end = off as usize + buf.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[off as usize..end].copy_from_slice(buf);
        Ok(buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> ModelFs {
        ModelFs::new()
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut m = fs();
        let fd = m.open("/foo", OpenFlags::CREAT_TRUNC).unwrap();
        assert_eq!(m.pwrite(fd, 3, b"abc").unwrap(), 3);
        m.close(fd).unwrap();
        assert_eq!(m.read_file("/foo").unwrap(), vec![0, 0, 0, b'a', b'b', b'c']);
        let st = m.stat("/foo").unwrap();
        assert_eq!(st.size, 6);
        assert_eq!(st.nlink, 1);
        assert_eq!(st.ftype, FileType::Regular);
    }

    #[test]
    fn write_advances_offset_and_append_seeks_to_end() {
        let mut m = fs();
        let fd = m.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
        m.write(fd, b"ab").unwrap();
        m.write(fd, b"cd").unwrap();
        assert_eq!(m.read_file("/f").unwrap(), b"abcd");
        m.close(fd).unwrap();
        let fd2 = m.open("/f", OpenFlags::APPEND).unwrap();
        m.write(fd2, b"ef").unwrap();
        assert_eq!(m.read_file("/f").unwrap(), b"abcdef");
    }

    #[test]
    fn mkdir_rmdir_semantics() {
        let mut m = fs();
        m.mkdir("/a").unwrap();
        assert_eq!(m.mkdir("/a"), Err(FsError::Exists));
        m.mkdir("/a/b").unwrap();
        assert_eq!(m.rmdir("/a"), Err(FsError::NotEmpty));
        m.rmdir("/a/b").unwrap();
        m.rmdir("/a").unwrap();
        assert_eq!(m.stat("/a"), Err(FsError::NotFound));
    }

    #[test]
    fn link_unlink_semantics() {
        let mut m = fs();
        m.creat("/f").unwrap();
        m.link("/f", "/g").unwrap();
        assert_eq!(m.stat("/f").unwrap().nlink, 2);
        assert_eq!(m.stat("/f").unwrap().ino, m.stat("/g").unwrap().ino);
        assert_eq!(m.link("/f", "/g"), Err(FsError::Exists));
        m.unlink("/f").unwrap();
        assert_eq!(m.stat("/g").unwrap().nlink, 1);
        m.unlink("/g").unwrap();
        assert_eq!(m.stat("/g"), Err(FsError::NotFound));
        m.mkdir("/d").unwrap();
        assert_eq!(m.link("/d", "/e"), Err(FsError::IsDir));
        assert_eq!(m.unlink("/d"), Err(FsError::IsDir));
    }

    #[test]
    fn rename_replaces_files_and_empty_dirs() {
        let mut m = fs();
        m.creat("/a").unwrap();
        m.creat("/b").unwrap();
        m.rename("/a", "/b").unwrap();
        assert_eq!(m.stat("/a"), Err(FsError::NotFound));
        assert!(m.stat("/b").is_ok());

        m.mkdir("/d1").unwrap();
        m.mkdir("/d2").unwrap();
        m.rename("/d1", "/d2").unwrap();
        assert_eq!(m.stat("/d1"), Err(FsError::NotFound));

        m.mkdir("/d3").unwrap();
        m.creat("/d3/x").unwrap();
        m.mkdir("/d4").unwrap();
        assert_eq!(m.rename("/d4", "/d3"), Err(FsError::NotEmpty));
        assert_eq!(m.rename("/d3", "/b"), Err(FsError::NotDir));
        assert_eq!(m.rename("/b", "/d4"), Err(FsError::IsDir));
    }

    #[test]
    fn rename_into_own_subtree_rejected() {
        let mut m = fs();
        m.mkdir("/a").unwrap();
        assert_eq!(m.rename("/a", "/a/b"), Err(FsError::Invalid));
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let mut m = fs();
        let fd = m.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
        m.pwrite(fd, 0, &[7u8; 10]).unwrap();
        m.close(fd).unwrap();
        m.truncate("/f", 4).unwrap();
        assert_eq!(m.read_file("/f").unwrap(), vec![7u8; 4]);
        m.truncate("/f", 8).unwrap();
        assert_eq!(m.read_file("/f").unwrap(), vec![7, 7, 7, 7, 0, 0, 0, 0]);
    }

    #[test]
    fn fallocate_modes() {
        let mut m = fs();
        let fd = m.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
        m.pwrite(fd, 0, &[9u8; 8]).unwrap();
        m.fallocate(fd, FallocMode::Allocate, 0, 16).unwrap();
        assert_eq!(m.stat("/f").unwrap().size, 16);
        m.fallocate(fd, FallocMode::KeepSize, 0, 64).unwrap();
        assert_eq!(m.stat("/f").unwrap().size, 16);
        m.fallocate(fd, FallocMode::ZeroRange, 0, 4).unwrap();
        assert_eq!(&m.read_file("/f").unwrap()[..8], &[0, 0, 0, 0, 9, 9, 9, 9]);
        assert_eq!(m.fallocate(fd, FallocMode::Allocate, 0, 0), Err(FsError::Invalid));
        m.close(fd).unwrap();
    }

    #[test]
    fn unlinked_open_file_remains_writable() {
        let mut m = fs();
        let fd = m.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
        m.unlink("/f").unwrap();
        assert_eq!(m.pwrite(fd, 0, b"x").unwrap(), 1);
        let mut buf = [0u8; 1];
        assert_eq!(m.pread(fd, 0, &mut buf).unwrap(), 1);
        m.close(fd).unwrap();
        // Node is dropped after the final close.
        assert_eq!(m.node_count(), 1);
    }

    #[test]
    fn open_excl_and_trunc() {
        let mut m = fs();
        m.creat("/f").unwrap();
        let excl = OpenFlags { create: true, excl: true, trunc: false, append: false };
        assert_eq!(m.open("/f", excl), Err(FsError::Exists));
        let fd = m.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
        m.pwrite(fd, 0, b"hello").unwrap();
        m.close(fd).unwrap();
        let fd = m.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
        m.close(fd).unwrap();
        assert_eq!(m.read_file("/f").unwrap(), b"");
    }

    #[test]
    fn readdir_lists_entries() {
        let mut m = fs();
        m.mkdir("/d").unwrap();
        m.creat("/d/f").unwrap();
        m.mkdir("/d/s").unwrap();
        let names: Vec<String> = m.readdir("/d").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["f", "s"]);
        assert_eq!(m.stat("/d").unwrap().nlink, 3);
        assert_eq!(m.readdir("/d/f"), Err(FsError::NotDir));
    }

    #[test]
    fn rename_same_path_is_noop() {
        let mut m = fs();
        m.creat("/f").unwrap();
        m.rename("/f", "/f").unwrap();
        assert!(m.stat("/f").is_ok());
    }

    #[test]
    fn two_fds_same_file_share_data() {
        let mut m = fs();
        let a = m.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
        let b = m.open("/f", OpenFlags::RDWR).unwrap();
        m.pwrite(a, 0, b"aa").unwrap();
        m.pwrite(b, 2, b"bb").unwrap();
        assert_eq!(m.read_file("/f").unwrap(), b"aabb");
        m.close(a).unwrap();
        m.close(b).unwrap();
    }
}
