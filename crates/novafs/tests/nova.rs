//! Functional, crash, and per-bug tests for the NOVA analogue.

use chipmunk::{test_workload, TestConfig, Violation};
use novafs::{Nova, NovaKind};
use pmem::PmDevice;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    BugId, BugSet, FsError, FileType, Op, OpenFlags, Workload,
};

const DEV: u64 = 4 * 1024 * 1024;

fn fixed_kind() -> NovaKind {
    NovaKind { opts: FsOptions::fixed(), fortis: false }
}

fn fortis_fixed_kind() -> NovaKind {
    NovaKind { opts: FsOptions::fixed(), fortis: true }
}

fn kind_with(bugs: &[BugId], fortis: bool) -> NovaKind {
    NovaKind { opts: FsOptions::with_bugs(BugSet::only(bugs)), fortis }
}

fn fresh(kind: &NovaKind) -> Nova<PmDevice> {
    kind.mkfs(PmDevice::new(DEV)).unwrap()
}

/// Crash now (drop unfenced writes) and remount.
fn crash_and_remount(kind: &NovaKind, fs: Nova<PmDevice>) -> Result<Nova<PmDevice>, FsError> {
    let img = fs.into_device().persistent_image().to_vec();
    kind.mount(PmDevice::from_image(img))
}

// ---- functional tests (fixed configuration) ----

#[test]
fn create_write_read_roundtrip() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/foo", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 100, b"hello nova").unwrap();
    fs.close(fd).unwrap();
    let data = fs.read_file("/foo").unwrap();
    assert_eq!(data.len(), 110);
    assert_eq!(&data[100..], b"hello nova");
    assert_eq!(&data[..100], &[0u8; 100][..]);
}

#[test]
fn synchronous_semantics_every_op_survives_crash() {
    // NOVA's headline property: every completed call is durable with no
    // fsync. Crash after each op and verify.
    let kind = fixed_kind();
    let mut fs = fresh(&kind);

    fs.mkdir("/d").unwrap();
    fs = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs.stat("/d").unwrap().ftype, FileType::Directory);

    fs.creat("/d/f").unwrap();
    fs = crash_and_remount(&kind, fs).unwrap();
    assert!(fs.stat("/d/f").is_ok());

    let fd = fs.open("/d/f", OpenFlags::RDWR).unwrap();
    fs.pwrite(fd, 0, &[7u8; 5000]).unwrap();
    fs.close(fd).unwrap();
    fs = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs.read_file("/d/f").unwrap(), vec![7u8; 5000]);

    fs.link("/d/f", "/g").unwrap();
    fs = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs.stat("/g").unwrap().nlink, 2);

    fs.rename("/g", "/h").unwrap();
    fs = crash_and_remount(&kind, fs).unwrap();
    assert!(fs.stat("/g").is_err());
    assert_eq!(fs.stat("/h").unwrap().nlink, 2);

    fs.truncate("/h", 100).unwrap();
    fs = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs.stat("/h").unwrap().size, 100);

    fs.unlink("/h").unwrap();
    fs.unlink("/d/f").unwrap();
    fs.rmdir("/d").unwrap();
    fs = crash_and_remount(&kind, fs).unwrap();
    assert!(fs.readdir("/").unwrap().is_empty());
}

#[test]
fn rename_variants() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    fs.mkdir("/a").unwrap();
    fs.mkdir("/b").unwrap();
    fs.creat("/a/x").unwrap();
    // Cross-directory.
    fs.rename("/a/x", "/b/y").unwrap();
    assert!(fs.stat("/a/x").is_err());
    assert!(fs.stat("/b/y").is_ok());
    // Same-directory with replacement.
    fs.creat("/b/z").unwrap();
    fs.rename("/b/y", "/b/z").unwrap();
    assert!(fs.stat("/b/y").is_err());
    // Directory rename updates parent link counts.
    assert_eq!(fs.stat("/").unwrap().nlink, 4);
    fs.rename("/b", "/a/b").unwrap();
    assert_eq!(fs.stat("/").unwrap().nlink, 3);
    assert_eq!(fs.stat("/a").unwrap().nlink, 3);
    assert!(fs.stat("/a/b/z").is_ok());
    // Into own subtree is rejected.
    assert_eq!(fs.rename("/a", "/a/b/c"), Err(FsError::Invalid));
}

#[test]
fn truncate_zeroing_and_extension() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[9u8; 6000]).unwrap();
    fs.close(fd).unwrap();
    fs.truncate("/f", 100).unwrap();
    fs.truncate("/f", 6000).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert_eq!(&data[..100], &[9u8; 100][..]);
    assert!(data[100..].iter().all(|&b| b == 0), "stale bytes after shrink+extend");
}

#[test]
fn fallocate_modes_work() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[5u8; 4096]).unwrap();
    fs.fallocate(fd, vfs::FallocMode::Allocate, 4096, 8192).unwrap();
    assert_eq!(fs.stat("/f").unwrap().size, 12288);
    fs.fallocate(fd, vfs::FallocMode::KeepSize, 20000, 4096).unwrap();
    assert_eq!(fs.stat("/f").unwrap().size, 12288);
    fs.fallocate(fd, vfs::FallocMode::ZeroRange, 0, 100).unwrap();
    let data = fs.read_file("/f").unwrap();
    assert!(data[..100].iter().all(|&b| b == 0));
    assert_eq!(data[100], 5);
    fs.fallocate(fd, vfs::FallocMode::PunchHole, 0, 4096).unwrap();
    assert!(fs.read_file("/f").unwrap()[..4096].iter().all(|&b| b == 0));
    fs.close(fd).unwrap();
    // Survives a crash.
    let fs2 = crash_and_remount(&kind, fs).unwrap();
    assert_eq!(fs2.stat("/f").unwrap().size, 12288);
}

#[test]
fn unlinked_open_file_freed_at_close_and_crash_orphan_reclaimed() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[1u8; 8192]).unwrap();
    fs.unlink("/f").unwrap();
    // Still readable through the descriptor.
    let mut buf = [0u8; 4];
    assert_eq!(fs.pread(fd, 0, &mut buf).unwrap(), 4);
    // Crash with the orphan outstanding: remount reclaims it.
    let fs2 = crash_and_remount(&kind, fs).unwrap();
    assert!(fs2.readdir("/").unwrap().is_empty());
    assert!(fs2.stat("/f").is_err());
}

#[test]
fn log_grows_across_pages() {
    let kind = fixed_kind();
    let mut fs = fresh(&kind);
    // More than 85 entries in the root log: creations + deletions.
    for i in 0..60 {
        fs.creat(&format!("/f{i}")).unwrap();
    }
    for i in 0..30 {
        fs.unlink(&format!("/f{i}")).unwrap();
    }
    let fs2 = crash_and_remount(&kind, fs).unwrap();
    let entries = fs2.readdir("/").unwrap();
    assert_eq!(entries.len(), 30);
}

#[test]
fn fortis_roundtrip_and_validation() {
    let kind = fortis_fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[3u8; 10000]).unwrap();
    fs.close(fd).unwrap();
    fs.truncate("/f", 5000).unwrap();
    let fs2 = crash_and_remount(&kind, fs).unwrap();
    // Reads validate checksums after remount; the fixed truncate recomputed
    // the boundary checksum.
    assert_eq!(fs2.read_file("/f").unwrap(), vec![3u8; 5000]);
}

#[test]
fn fortis_detects_media_corruption() {
    let kind = fortis_fixed_kind();
    let mut fs = fresh(&kind);
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    fs.pwrite(fd, 0, &[3u8; 4096]).unwrap();
    fs.close(fd).unwrap();
    // Corrupt the file data directly on "media" and remount.
    let mut img = fs.into_device().persistent_image().to_vec();
    // Find the data block: it is the block whose bytes are all 3.
    let blk = (0..img.len() / 4096)
        .find(|&b| img[b * 4096..(b + 1) * 4096].iter().all(|&x| x == 3))
        .expect("data block present");
    img[blk * 4096 + 10] ^= 0xff;
    let fs2 = kind.mount(PmDevice::from_image(img)).unwrap();
    assert!(matches!(fs2.read_file("/f"), Err(FsError::Corrupt(_))));
}

// ---- whole-pipeline crash-consistency tests via chipmunk ----

fn wl(name: &str, ops: Vec<Op>) -> Workload {
    Workload::new(name, ops)
}

fn check(kind: &NovaKind, w: &Workload) -> chipmunk::TestOutcome {
    test_workload(kind, w, &TestConfig::default())
}

#[test]
fn fixed_nova_passes_core_workloads() {
    let kind = fixed_kind();
    let workloads = vec![
        wl("creat", vec![Op::Creat { path: "/A".into() }]),
        wl(
            "mkdir-creat",
            vec![Op::Mkdir { path: "/d".into() }, Op::Creat { path: "/d/f".into() }],
        ),
        wl(
            "write",
            vec![
                Op::Creat { path: "/f".into() },
                Op::WritePath { path: "/f".into(), off: 0, size: 5000 },
            ],
        ),
        wl(
            "link-unlink",
            vec![
                Op::Creat { path: "/f".into() },
                Op::Link { old: "/f".into(), new: "/g".into() },
                Op::Unlink { path: "/f".into() },
            ],
        ),
        wl(
            "rename-same-dir",
            vec![
                Op::Creat { path: "/a".into() },
                Op::Rename { old: "/a".into(), new: "/b".into() },
            ],
        ),
        wl(
            "rename-cross-dir",
            vec![
                Op::Mkdir { path: "/d".into() },
                Op::Creat { path: "/d/a".into() },
                Op::Rename { old: "/d/a".into(), new: "/b".into() },
            ],
        ),
        wl(
            "rename-replace",
            vec![
                Op::Creat { path: "/a".into() },
                Op::Creat { path: "/b".into() },
                Op::WritePath { path: "/a".into(), off: 0, size: 100 },
                Op::Rename { old: "/a".into(), new: "/b".into() },
            ],
        ),
        wl(
            "truncate",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 5000 },
                Op::Truncate { path: "/f".into(), size: 1000 },
            ],
        ),
        wl(
            "falloc",
            vec![
                Op::WritePath { path: "/f".into(), off: 0, size: 3000 },
                Op::FallocPath {
                    path: "/f".into(),
                    mode: vfs::FallocMode::Allocate,
                    off: 0,
                    len: 8192,
                },
            ],
        ),
        wl(
            "rmdir",
            vec![Op::Mkdir { path: "/d".into() }, Op::Rmdir { path: "/d".into() }],
        ),
    ];
    for w in &workloads {
        let out = check(&kind, w);
        assert!(
            out.reports.is_empty(),
            "fixed NOVA violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
        assert!(out.crash_states > 0, "{}: no crash states explored", w.name);
    }
}

#[test]
fn fixed_fortis_passes_core_workloads() {
    let kind = fortis_fixed_kind();
    let workloads = vec![
        wl(
            "fortis-mix",
            vec![
                Op::Mkdir { path: "/d".into() },
                Op::WritePath { path: "/d/f".into(), off: 0, size: 5000 },
                Op::Link { old: "/d/f".into(), new: "/g".into() },
                Op::Truncate { path: "/d/f".into(), size: 1000 },
                Op::Unlink { path: "/g".into() },
                Op::Rename { old: "/d/f".into(), new: "/h".into() },
                Op::Rmdir { path: "/d".into() },
            ],
        ),
    ];
    for w in &workloads {
        let out = check(&kind, w);
        assert!(
            out.reports.is_empty(),
            "fixed NOVA-Fortis violated {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
    }
}

// ---- per-bug detection tests: each bug found with exactly it enabled ----

fn assert_bug_found(kind: &NovaKind, w: &Workload, bug: BugId, class: &str) {
    let out = test_workload(kind, w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| r.violation.class() == class),
        "{bug} not detected as {class} on {}; reports: {:#?}",
        w.name,
        out.reports
    );
    assert!(out.traced_bugs.contains(&bug), "{bug} code path did not execute");
}

#[test]
fn bug01_unmountable_detected() {
    let kind = kind_with(&[BugId::B01], false);
    let w = wl("b01", vec![Op::Creat { path: "/f".into() }]);
    assert_bug_found(&kind, &w, BugId::B01, "unmountable");
}

#[test]
fn bug02_ghost_inode_detected() {
    let kind = kind_with(&[BugId::B02], false);
    let w = wl("b02", vec![Op::Mkdir { path: "/d".into() }]);
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports
            .iter()
            .any(|r| matches!(r.violation, Violation::CorruptState(_) | Violation::UnusableState(_))),
        "bug 2 not detected: {:#?}",
        out.reports
    );
}

#[test]
fn bug03_journal_replay_detected() {
    let kind = kind_with(&[BugId::B03], false);
    let w = wl(
        "b03",
        vec![
            Op::Creat { path: "/f".into() },
            Op::Link { old: "/f".into(), new: "/g".into() },
        ],
    );
    assert_bug_found(&kind, &w, BugId::B03, "unmountable");
}

#[test]
fn bug04_rename_file_disappears() {
    let kind = kind_with(&[BugId::B04], false);
    let w = wl(
        "b04",
        vec![
            Op::Creat { path: "/a".into() },
            Op::Rename { old: "/a".into(), new: "/b".into() },
        ],
    );
    assert_bug_found(&kind, &w, BugId::B04, "atomicity");
}

#[test]
fn bug05_rename_old_file_remains() {
    let kind = kind_with(&[BugId::B05], false);
    let w = wl(
        "b05",
        vec![
            Op::Mkdir { path: "/d".into() },
            Op::Creat { path: "/d/a".into() },
            Op::Rename { old: "/d/a".into(), new: "/b".into() },
        ],
    );
    assert_bug_found(&kind, &w, BugId::B05, "atomicity");
}

#[test]
fn bug06_link_count_early() {
    let kind = kind_with(&[BugId::B06], false);
    let w = wl(
        "b06",
        vec![
            Op::Creat { path: "/f".into() },
            Op::Link { old: "/f".into(), new: "/g".into() },
        ],
    );
    assert_bug_found(&kind, &w, BugId::B06, "atomicity");
}

#[test]
fn bug07_truncate_data_loss() {
    let kind = kind_with(&[BugId::B07], false);
    let w = wl(
        "b07",
        vec![
            Op::WritePath { path: "/f".into(), off: 0, size: 5000 },
            Op::Truncate { path: "/f".into(), size: 100 },
        ],
    );
    assert_bug_found(&kind, &w, BugId::B07, "atomicity");
}

#[test]
fn bug08_fallocate_data_loss() {
    let kind = kind_with(&[BugId::B08], false);
    let w = wl(
        "b08",
        vec![
            Op::WritePath { path: "/f".into(), off: 0, size: 3000 },
            Op::FallocPath {
                path: "/f".into(),
                mode: vfs::FallocMode::KeepSize,
                off: 0,
                len: 8192,
            },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| r.violation.class() == "synchrony"
            || r.violation.class() == "atomicity"),
        "bug 8 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B08));
}

#[test]
fn bug09_stale_checksum_detected() {
    let kind = kind_with(&[BugId::B09], true);
    let w = wl(
        "b09",
        vec![
            Op::Creat { path: "/f".into() },
            Op::Unlink { path: "/f".into() },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| matches!(
            r.violation,
            Violation::CorruptState(_) | Violation::UnusableState(_) | Violation::Unmountable(_)
        )),
        "bug 9 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B09));
}

#[test]
fn bug10_replica_divergence_undeletable() {
    let kind = kind_with(&[BugId::B10], true);
    let w = wl(
        "b10",
        vec![
            Op::Creat { path: "/f".into() },
            Op::Link { old: "/f".into(), new: "/g".into() },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| matches!(r.violation, Violation::UnusableState(_))),
        "bug 10 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B10));
}

#[test]
fn bug11_double_free_on_recovery() {
    let kind = kind_with(&[BugId::B11], true);
    let w = wl(
        "b11",
        vec![
            Op::WritePath { path: "/f".into(), off: 0, size: 10000 },
            Op::Truncate { path: "/f".into(), size: 0 },
        ],
    );
    assert_bug_found(&kind, &w, BugId::B11, "unmountable");
}

#[test]
fn bug12_truncate_unreadable_file() {
    let kind = kind_with(&[BugId::B12], true);
    let w = wl(
        "b12",
        vec![
            Op::WritePath { path: "/f".into(), off: 0, size: 5000 },
            Op::Truncate { path: "/f".into(), size: 100 },
        ],
    );
    let out = test_workload(&kind, &w, &TestConfig::default());
    assert!(
        out.reports.iter().any(|r| matches!(r.violation, Violation::CorruptState(_))),
        "bug 12 not detected: {:#?}",
        out.reports
    );
    assert!(out.traced_bugs.contains(&BugId::B12));
}

#[test]
fn fixed_bugs_stay_fixed_on_trigger_workloads() {
    // The workloads that expose each bug must be clean with bugs disabled.
    let plain = fixed_kind();
    let fortis = fortis_fixed_kind();
    let cases: Vec<(&NovaKind, Workload)> = vec![
        (&plain, wl("f01", vec![Op::Creat { path: "/f".into() }])),
        (
            &plain,
            wl(
                "f04",
                vec![
                    Op::Creat { path: "/a".into() },
                    Op::Rename { old: "/a".into(), new: "/b".into() },
                ],
            ),
        ),
        (
            &fortis,
            wl(
                "f11",
                vec![
                    Op::WritePath { path: "/f".into(), off: 0, size: 10000 },
                    Op::Truncate { path: "/f".into(), size: 0 },
                ],
            ),
        ),
        (
            &fortis,
            wl(
                "f09",
                vec![Op::Creat { path: "/f".into() }, Op::Unlink { path: "/f".into() }],
            ),
        ),
    ];
    for (kind, w) in cases {
        let out = test_workload(kind, &w, &TestConfig::default());
        assert!(
            out.reports.is_empty(),
            "fixed configuration still violates {}:\n{}",
            w.name,
            out.reports.iter().map(|r| r.to_text()).collect::<String>()
        );
    }
}
