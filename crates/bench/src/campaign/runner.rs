//! The campaign worker: claims tasks off the queue, runs them with the
//! existing scheduling machinery, journals per-workload checkpoints, and
//! commits results; plus the canonical-order merge that folds all task
//! results into the deterministic campaign document.
//!
//! ## Why a resumed campaign is byte-identical *and* warm
//!
//! An ACE task is one scheduled batch: [`crate::plan_subtrees`] partitions
//! it into prefix subtrees and the workloads run group by group through one
//! [`PrefixCache`] — exactly the `Scheduler`'s single-worker execution
//! order, so per-workload outcomes (including `prefix_hits` /
//! `prefix_ops_saved`) are pure functions of the task. On resume, journaled
//! workloads are spliced from their checkpoints; at the first missing
//! workload the runner **re-warms** the cache by re-running the last
//! journaled workload of that group (discarding its result — the journal
//! already has it): cache state is a pure function of the workload that
//! produced it, so the next live workload resumes from precisely the op
//! prefix it would have seen uninterrupted. Resumed runs therefore re-earn
//! 100% of the serial `prefix_ops_saved`, not ≥ 90%.
//!
//! A fuzz task resumes by *replay*: generation is deterministic given the
//! seed and the feedback sequence, and every checkpoint records the exact
//! new-coverage hashes its workload contributed, so re-running
//! `next_workload`/`feedback` over the journaled prefix puts the RNG
//! stream, corpus, and seen-set exactly where the killed worker left them.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::time::Duration;

use chipmunk::{sandbox, test_workload, PrefixCache, Stage, TestConfig};
use vfs::{
    fs::{FsKind, FsOptions},
    BugSet, Cov, Workload,
};
use workloads::fuzz::{FuzzConfig, Fuzzer};

use crate::jsonout::{self, JVal};
use crate::{dispatch, plan_subtrees, SubtreePlan, WithKind};

use super::hostio::StoreError;
use super::queue::{Claim, Lease, WorkQueue};
use super::store::{CampaignStore, TaskJournal};
use super::wire::{fnv1a, ju, WRes};
use super::{CampaignSpec, TaskKind, FUZZ_TASK_LEN};

/// Worker runtime options (everything *not* in the spec: these may differ
/// between runs of the same campaign without affecting its results).
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// In-harness threads (crash-subset parallelism). Outcome-invariant.
    pub threads: usize,
    /// Lease heartbeat TTL for stale-lease reclamation.
    pub ttl: Duration,
    /// Worker id (lease files, summary file name).
    pub worker_id: String,
    /// Test hook: stop after this many journal checkpoint appends —
    /// `hard_kill` aborts the process (a genuine SIGKILL-shaped death, no
    /// destructors), otherwise the worker returns with `interrupted` set,
    /// leaving its lease behind exactly as a kill would.
    pub kill_after_checkpoints: Option<u64>,
    /// Abort instead of returning when the kill hook fires.
    pub hard_kill: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            threads: 1,
            ttl: Duration::from_secs(5),
            worker_id: format!("w{}", std::process::id()),
            kill_after_checkpoints: None,
            hard_kill: false,
        }
    }
}

/// What one worker did (written to `journal/worker-<id>.json` on clean
/// exit; purely observability — never part of the deterministic document).
#[derive(Debug, Default, Clone)]
pub struct WorkerSummary {
    /// Tasks this worker completed.
    pub tasks_run: u64,
    /// Of those, tasks resumed from a non-empty journal.
    pub tasks_resumed: u64,
    /// Workload results spliced from journals instead of re-run.
    pub journal_workloads_replayed: u64,
    /// Cache re-warm runs (re-executions of an already-journaled workload
    /// to rebuild `PrefixCache` state mid-group).
    pub rewarm_runs: u64,
    /// Tasks abandoned (lease released, task left for a re-claim) because
    /// of a recoverable host-I/O error.
    pub tasks_abandoned: u64,
    /// Host-I/O retries this worker's context performed.
    pub io_retries: u64,
    /// Simulated-clock ticks spent in retry backoff.
    pub backoff_ticks: u64,
    /// Corrupt committed artifacts moved to `quarantine/`.
    pub tasks_quarantined: u64,
    /// Faults the host-I/O injector produced (0 outside torture runs).
    pub faults_injected: u64,
    /// The store entered read-only degraded mode (ENOSPC).
    pub degraded: bool,
    /// The kill hook fired (test runs only).
    pub interrupted: bool,
}

impl WorkerSummary {
    /// Serializes the summary.
    pub fn to_jval(&self, worker_id: &str) -> JVal {
        JVal::Obj(vec![
            ("worker".into(), JVal::Str(worker_id.to_string())),
            ("tasks_run".into(), ju(self.tasks_run)),
            ("tasks_resumed".into(), ju(self.tasks_resumed)),
            ("journal_workloads_replayed".into(), ju(self.journal_workloads_replayed)),
            ("rewarm_runs".into(), ju(self.rewarm_runs)),
            ("tasks_abandoned".into(), ju(self.tasks_abandoned)),
            ("io_retries".into(), ju(self.io_retries)),
            ("backoff_ticks".into(), ju(self.backoff_ticks)),
            ("tasks_quarantined".into(), ju(self.tasks_quarantined)),
            ("faults_injected".into(), ju(self.faults_injected)),
            ("degraded".into(), JVal::Bool(self.degraded)),
            ("interrupted".into(), JVal::Bool(self.interrupted)),
        ])
    }

    /// Copies the host-I/O observability counters out of the store's
    /// context (called once, when the worker stops).
    fn absorb_io(&mut self, store: &CampaignStore) {
        self.io_retries = store.io.io_retries();
        self.backoff_ticks = store.io.backoff_ticks();
        self.tasks_quarantined = store.io.tasks_quarantined();
        self.faults_injected = store.io.faults_injected();
        self.degraded = store.io.degraded();
    }
}

enum TaskRun {
    Complete(Vec<WRes>),
    Interrupted,
}

/// Times one task may be abandoned (recoverable host-I/O failure) before
/// the worker gives up on the campaign: a task that keeps failing under
/// retry + re-lease is not going to heal itself.
const MAX_TASK_ATTEMPTS: u32 = 5;

/// Consecutive no-progress queue passes before the worker declares a
/// livelock. Generous — each pass sleeps 25ms, so this is minutes of a
/// genuinely wedged store, never a slow sibling worker (their completed
/// tasks count as progress on our next pass).
const MAX_STALLED_PASSES: u32 = 12_000;

/// Runs one worker over the store until every task has a committed result
/// (or the kill hook fires). Safe to run concurrently with any number of
/// other workers, in this process or others, on the same store.
///
/// Error policy: Transient (retry-exhausted) and quarantined-Corrupt
/// failures **abandon the task** — the lease is released, the failure
/// counted, and the task re-claimed on a later pass (by this or any other
/// worker); a task that fails [`MAX_TASK_ATTEMPTS`] times escalates to
/// Fatal. Exhausted (ENOSPC → degraded read-only store) and Fatal (host
/// death, unusable store) stop the worker immediately.
pub fn run_worker(store: &CampaignStore, opts: &RunOpts) -> Result<WorkerSummary, StoreError> {
    let spec = &store.spec;
    let ace_ws = spec.ace_workloads();
    let total = spec.total_tasks();
    let queue = WorkQueue::new(store, &opts.worker_id, opts.ttl);
    let mut budget = opts.kill_after_checkpoints;
    let mut sum = WorkerSummary::default();
    let mut attempts: BTreeMap<usize, u32> = BTreeMap::new();
    let mut stalled = 0u32;

    loop {
        let mut progressed = false;
        let mut all_done = true;
        for id in 0..total {
            if store.result_exists(id) {
                continue;
            }
            all_done = false;
            let kind = spec.task_kind(id, ace_ws.len());
            if let TaskKind::Fuzz { index } = kind {
                // Fuzz batches are sequentially dependent: generation of
                // batch k replays batches 0..k.
                if index > 0 && !store.result_exists(id - 1) {
                    continue;
                }
            }
            let lease = match queue.claim(id) {
                Claim::Claimed(l) => l,
                Claim::Busy | Claim::Done => continue,
            };
            let step = run_task(store, id, kind, &ace_ws, &lease, opts, &mut budget, &mut sum)
                .and_then(|run| match run {
                    TaskRun::Complete(results) => {
                        store.write_result(id, &results)?;
                        Ok(true)
                    }
                    TaskRun::Interrupted => Ok(false),
                });
            match step {
                Ok(true) => {
                    lease.release();
                    sum.tasks_run += 1;
                    progressed = true;
                }
                Ok(false) => {
                    // Drop the lease without releasing it (`Lease` has no
                    // Drop) — that is what a kill does; a successor (often
                    // this very process) reclaims it via the stale check.
                    sum.interrupted = true;
                    sum.absorb_io(store);
                    return Ok(sum);
                }
                Err(e) if e.task_recoverable() => {
                    // Abandon: release the lease and let the normal claim
                    // loop re-run the task (journaled progress is kept —
                    // the successor splices it). A quarantined dependency
                    // lands here too: its completion marker is gone, so
                    // the id-order pass re-runs the dependency first.
                    lease.release();
                    sum.tasks_abandoned += 1;
                    let n = attempts.entry(id).or_insert(0);
                    *n += 1;
                    if *n >= MAX_TASK_ATTEMPTS {
                        sum.absorb_io(store);
                        return Err(StoreError::fatal(format!(
                            "task {id} abandoned {n} times; last error: {e}"
                        )));
                    }
                    progressed = true; // re-claim next pass without sleeping
                }
                Err(e) => {
                    sum.absorb_io(store);
                    return Err(e);
                }
            }
        }
        if all_done {
            break;
        }
        if progressed {
            stalled = 0;
        } else {
            // Someone else holds the remaining leases (or a fuzz dependency
            // is still running elsewhere): wait for heartbeats to resolve.
            // A dead injector or wedged store must not spin forever.
            if store.io.crashed() {
                sum.absorb_io(store);
                return Err(StoreError::fatal("host crashed; worker cannot make progress"));
            }
            // ENOSPC surfacing through the lease path is swallowed by the
            // claim loop (a refused create just means "not ours"), so the
            // degraded flag is the only signal — a full disk can never
            // un-stall us.
            if store.io.degraded() {
                sum.absorb_io(store);
                return Err(StoreError::Exhausted {
                    op: "claim",
                    path: store.dir.display().to_string(),
                    detail: "store is out of space; switching to read-only degraded mode".into(),
                });
            }
            stalled += 1;
            if stalled > MAX_STALLED_PASSES {
                sum.absorb_io(store);
                return Err(StoreError::fatal(format!(
                    "queue made no progress for {MAX_STALLED_PASSES} passes; giving up"
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    sum.absorb_io(store);
    Ok(sum)
}

/// Writes the worker's summary file (observability only).
pub fn write_summary(store: &CampaignStore, opts: &RunOpts, sum: &WorkerSummary) {
    let path = store.dir.join("journal").join(format!("worker-{}.json", opts.worker_id));
    let _ = jsonout::write_atomic(
        &path.to_string_lossy(),
        &(sum.to_jval(&opts.worker_id).render() + "\n"),
    );
}

#[allow(clippy::too_many_arguments)]
fn run_task(
    store: &CampaignStore,
    id: usize,
    kind: TaskKind,
    ace_ws: &[Workload],
    lease: &Lease,
    opts: &RunOpts,
    budget: &mut Option<u64>,
    sum: &mut WorkerSummary,
) -> Result<TaskRun, StoreError> {
    match kind {
        TaskKind::Ace { start, len } => {
            let ws = &ace_ws[start..start + len];
            let keys: Vec<Vec<String>> =
                ws.iter().map(|w| w.ops.iter().map(|o| o.describe()).collect()).collect();
            let plan = plan_subtrees(&keys);
            let sig = ace_plan_sig(id, &keys, &plan);
            let state = TaskJournal::recover(&store.io, &store.journal_path(id), sig)?;
            if !state.done.is_empty() {
                sum.tasks_resumed += 1;
                sum.journal_workloads_replayed += state.done.len() as u64;
            }
            let mut journal = TaskJournal::open(&store.io, &store.journal_path(id), &state, sig)?;
            let cfg = store.spec.ace_cfg(opts.threads);
            dispatch(
                store.spec.fs,
                campaign_opts(&store.spec),
                AceTask {
                    ws,
                    plan: &plan,
                    cfg: &cfg,
                    bitmap_bits: store.spec.bitmap_bits,
                    done: state.done,
                    journal: &mut journal,
                    lease,
                    budget,
                    hard_kill: opts.hard_kill,
                    rewarms: &mut sum.rewarm_runs,
                },
            )
        }
        TaskKind::Fuzz { index } => {
            let sig = fuzz_plan_sig(id, &store.spec, index);
            let state = TaskJournal::recover(&store.io, &store.journal_path(id), sig)?;
            if !state.done.is_empty() {
                sum.tasks_resumed += 1;
                sum.journal_workloads_replayed += state.done.len() as u64;
            }
            let mut journal = TaskJournal::open(&store.io, &store.journal_path(id), &state, sig)?;
            // Replay material: every earlier fuzz batch's committed results,
            // in order (their existence gates claiming this task). The
            // verified loader quarantines a corrupt dependency, clearing its
            // completion marker — the abandon path then re-runs it first.
            let first_fuzz = id - index as usize;
            let mut prior = Vec::new();
            for t in first_fuzz..id {
                prior.push(store.load_result_verified(t)?.ok_or(StoreError::Transient {
                    op: "load-dependency",
                    path: store.result_path(t).display().to_string(),
                    detail: format!("fuzz task {t} lost its result while task {id} was claimed"),
                })?);
            }
            let len = FUZZ_TASK_LEN.min(store.spec.fuzz_budget - index * FUZZ_TASK_LEN) as usize;
            let cfg = store.spec.fuzz_cfg(opts.threads);
            dispatch(
                store.spec.fs,
                campaign_opts(&store.spec),
                FuzzTask {
                    spec: &store.spec,
                    len,
                    prior,
                    cfg: &cfg,
                    done: state.done,
                    journal: &mut journal,
                    lease,
                    budget,
                    hard_kill: opts.hard_kill,
                },
            )
        }
    }
}

/// Campaigns hunt the as-released file system with coverage on (the fuzzer
/// feeds on it; ACE coverage enriches the store's bitmap for free). A spec
/// targeting one Table 1 bug (`hunt --store`) injects only that bug.
fn campaign_opts(spec: &CampaignSpec) -> FsOptions {
    let bugs = match spec.bug {
        Some(n) => {
            let id = vfs::bugs::bug_table()
                .iter()
                .find(|b| b.id.number() == n)
                .expect("spec.bug validated at parse time")
                .id;
            BugSet::only(&[id])
        }
        None => BugSet::as_released(),
    };
    FsOptions { bugs, cov: Cov::enabled(), ..Default::default() }
}

/// Ticks the kill-hook budget after a checkpoint append. Returns `true`
/// when the worker must stop now.
fn kill_tick(budget: &mut Option<u64>, hard_kill: bool) -> bool {
    let Some(b) = budget else { return false };
    *b = b.saturating_sub(1);
    if *b > 0 {
        return false;
    }
    if hard_kill {
        // A real SIGKILL runs no destructors; neither does abort. The lease
        // and any torn journal tail stay exactly as they are.
        std::process::abort();
    }
    true
}

fn ace_plan_sig(task: usize, keys: &[Vec<String>], plan: &SubtreePlan) -> u64 {
    let mut h = fnv1a(b"ace-plan", 0);
    h = fnv1a(&(task as u64).to_le_bytes(), h);
    for g in &plan.groups {
        h = fnv1a(b"G", h);
        for &i in g {
            h = fnv1a(&(i as u64).to_le_bytes(), h);
            for k in &keys[i] {
                h = fnv1a(k.as_bytes(), h);
                h = fnv1a(b";", h);
            }
        }
    }
    fnv1a(&plan.max_depth.to_le_bytes(), h)
}

fn fuzz_plan_sig(task: usize, spec: &CampaignSpec, index: u64) -> u64 {
    let mut h = fnv1a(b"fuzz-plan", 0);
    h = fnv1a(&(task as u64).to_le_bytes(), h);
    h = fnv1a(&spec.fuzz_seed.to_le_bytes(), h);
    h = fnv1a(&index.to_le_bytes(), h);
    fnv1a(&spec.fuzz_budget.to_le_bytes(), h)
}

struct AceTask<'a> {
    ws: &'a [Workload],
    plan: &'a SubtreePlan,
    cfg: &'a TestConfig,
    bitmap_bits: u64,
    done: BTreeMap<usize, WRes>,
    journal: &'a mut TaskJournal,
    lease: &'a Lease,
    budget: &'a mut Option<u64>,
    hard_kill: bool,
    rewarms: &'a mut u64,
}

impl WithKind for AceTask<'_> {
    type Out = Result<TaskRun, StoreError>;

    fn call<K: FsKind>(mut self, kind: K) -> Self::Out {
        let mut cache = PrefixCache::new(&kind, self.cfg);
        let mut slots: Vec<Option<WRes>> = Vec::with_capacity(self.ws.len());
        slots.resize_with(self.ws.len(), || None);
        let guarded_run = |cache: &mut PrefixCache<K>, w: &Workload, cfg: &TestConfig| {
            sandbox::guarded(Stage::Worker, || cache.run(w, cfg)).unwrap_or_else(|v| {
                (crate::worker_failure_outcome(w, v), HashSet::new(), BTreeSet::new())
            })
        };
        for g in &self.plan.groups {
            // `warm` = the cache currently holds the state of this group's
            // previous workload (the serial invariant a journal skip breaks).
            let mut warm = false;
            for (pos, &i) in g.iter().enumerate() {
                if let Some(r) = self.done.remove(&i) {
                    slots[i] = Some(r);
                    warm = false;
                    continue;
                }
                if !warm && pos > 0 && cache.is_active() {
                    // Re-warm: re-run the group's previous (journaled)
                    // workload, discarding its result. Cache state is a pure
                    // function of the workload that produced it, so the next
                    // live run splices from exactly the prefix depth it
                    // would have seen uninterrupted.
                    let _ = guarded_run(&mut cache, &self.ws[g[pos - 1]], self.cfg);
                    *self.rewarms += 1;
                }
                let (out, cov, _trace) = guarded_run(&mut cache, &self.ws[i], self.cfg);
                let mut res = WRes::from_outcome(&out, &cov, self.bitmap_bits, Vec::new(), None);
                if i == 0 {
                    // The scheduler stamps subtree stats on the batch's
                    // first outcome; the plan is known up front, so the
                    // stamp lands even when index 0 runs after a resume.
                    res.counters[6] = self.plan.groups.len() as u64;
                    res.counters[7] = self.plan.max_depth;
                }
                self.journal.checkpoint(i, &res)?;
                self.lease.heartbeat();
                slots[i] = Some(res);
                warm = true;
                if kill_tick(self.budget, self.hard_kill) {
                    return Ok(TaskRun::Interrupted);
                }
            }
        }
        Ok(TaskRun::Complete(slots.into_iter().map(|s| s.expect("slot filled")).collect()))
    }
}

struct FuzzTask<'a> {
    spec: &'a CampaignSpec,
    len: usize,
    prior: Vec<Vec<WRes>>,
    cfg: &'a TestConfig,
    done: BTreeMap<usize, WRes>,
    journal: &'a mut TaskJournal,
    lease: &'a Lease,
    budget: &'a mut Option<u64>,
    hard_kill: bool,
}

impl WithKind for FuzzTask<'_> {
    type Out = Result<TaskRun, StoreError>;

    fn call<K: FsKind>(mut self, kind: K) -> Self::Out {
        let mut fuzzer = Fuzzer::new(self.spec.fuzz_seed, FuzzConfig::default());
        let mut seen: HashSet<u64> = HashSet::new();
        // Rebuild the generation trajectory: every prior batch, then this
        // task's journaled prefix, replaying the recorded feedback.
        let replay = |fuzzer: &mut Fuzzer, seen: &mut HashSet<u64>, r: &WRes| {
            let w = fuzzer.next_workload();
            debug_assert_eq!(w.name, r.name, "fuzz replay diverged from the journal");
            seen.extend(r.cov_new.iter().copied());
            fuzzer.feedback(&w, r.cov_new.len());
        };
        for batch in &self.prior {
            for r in batch {
                replay(&mut fuzzer, &mut seen, r);
            }
        }
        let mut slots: Vec<Option<WRes>> = Vec::with_capacity(self.len);
        slots.resize_with(self.len, || None);
        for (i, slot) in slots.iter_mut().enumerate() {
            if let Some(r) = self.done.remove(&i) {
                replay(&mut fuzzer, &mut seen, &r);
                *slot = Some(r);
                continue;
            }
            let w = fuzzer.next_workload();
            // Mirror `run_batch`'s per-workload semantics: fresh sinks, the
            // whole run guarded so an FS panic fails one workload only.
            let fresh = kind.with_options(kind.options().with_fresh_sinks());
            let out = sandbox::guarded(Stage::Worker, || test_workload(&fresh, &w, self.cfg))
                .unwrap_or_else(|v| crate::worker_failure_outcome(&w, v));
            let cov = fresh.options().cov.snapshot();
            let mut new: Vec<u64> = cov.iter().filter(|h| !seen.contains(h)).copied().collect();
            new.sort_unstable();
            seen.extend(new.iter().copied());
            fuzzer.feedback(&w, new.len());
            // Corpus-worthy: new coverage (what the fuzzer itself keeps) or
            // a violation (what a developer wants preserved).
            let keep = !new.is_empty() || !out.reports.is_empty();
            let res = WRes::from_outcome(
                &out,
                &cov,
                self.spec.bitmap_bits,
                new,
                keep.then(|| w.to_wire_lines()),
            );
            self.journal.checkpoint(i, &res)?;
            self.lease.heartbeat();
            *slot = Some(res);
            if kill_tick(self.budget, self.hard_kill) {
                return Ok(TaskRun::Interrupted);
            }
        }
        Ok(TaskRun::Complete(slots.into_iter().map(|s| s.expect("slot filled")).collect()))
    }
}

/// The merged campaign: totals in canonical task order plus the rendered
/// deterministic document.
#[derive(Debug)]
pub struct Merged {
    /// Rendered `campaign.json` contents (deterministic: byte-identical for
    /// any worker count, thread count, or kill/resume pattern).
    pub doc: String,
    /// Workloads merged.
    pub workloads: u64,
    /// Summed counters (see [`super::wire::COUNTER_NAMES`]).
    pub totals: [u64; 20],
    /// Total violation reports.
    pub reports: u64,
    /// Bits set in the persistent crash-state bitmap.
    pub state_bits_set: u64,
    /// Bits set in the persistent coverage bitmap.
    pub cov_bits_set: u64,
    /// Corpus entries written.
    pub corpus_entries: u64,
    /// FNV-1a chain over every workload result line, in canonical order.
    pub fingerprint: u64,
}

/// Merges all committed task results in canonical (task, batch-index)
/// order, writes `campaign.json`, the coverage bitmaps, and the corpus
/// entries, and returns the totals. Fails if any task is incomplete; a
/// corrupt result file is quarantined (clearing that task's completion
/// marker) and reported as Corrupt so the caller can re-run the task.
pub fn merge(store: &CampaignStore) -> Result<Merged, StoreError> {
    let spec = &store.spec;
    let total = spec.total_tasks();
    let mut totals = [0u64; 20];
    let mut workloads = 0u64;
    let mut fingerprint = 0u64;
    let mut reports: Vec<JVal> = Vec::new();
    let mut state_map = vec![0u8; (spec.bitmap_bits / 8) as usize];
    let mut cov_map = vec![0u8; (spec.bitmap_bits / 8) as usize];
    let mut corpus_entries = 0u64;
    let set = |map: &mut [u8], bit: u64| map[(bit / 8) as usize] |= 1 << (bit % 8);

    for id in 0..total {
        let results = store.load_result_verified(id)?.ok_or_else(|| {
            StoreError::fatal(format!("task {id} has no committed result; campaign incomplete"))
        })?;
        for res in &results {
            workloads += 1;
            fingerprint = fnv1a(res.to_jval().render().as_bytes(), fingerprint);
            for (idx, c) in res.counters.iter().enumerate() {
                if idx == 7 {
                    // sched_subtree_max_depth is a max, everything else sums.
                    totals[idx] = totals[idx].max(*c);
                } else {
                    totals[idx] += c;
                }
            }
            for &b in &res.state_bits {
                set(&mut state_map, b);
            }
            for &b in &res.cov_bits {
                set(&mut cov_map, b);
            }
            for r in &res.reports {
                reports.push(r.to_jval());
            }
            if let Some(ops) = &res.ops {
                let entry = JVal::Obj(vec![
                    ("name".into(), JVal::Str(res.name.clone())),
                    ("fs".into(), JVal::Str(spec.fs.to_string())),
                    ("ops".into(), JVal::Arr(ops.iter().map(|l| JVal::Str(l.clone())).collect())),
                ]);
                let path = store.dir.join("corpus").join(format!("{}.json", res.name));
                store.io.write_atomic(&path, (entry.render() + "\n").as_bytes())?;
                corpus_entries += 1;
            }
        }
    }
    let state_bits_set = state_map.iter().map(|b| b.count_ones() as u64).sum();
    let cov_bits_set = cov_map.iter().map(|b| b.count_ones() as u64).sum();
    store.io.write_atomic(&store.dir.join("coverage/state.bits"), &state_map)?;
    store.io.write_atomic(&store.dir.join("coverage/cov.bits"), &cov_map)?;

    let totals_obj = JVal::Obj(
        super::wire::COUNTER_NAMES
            .iter()
            .zip(totals)
            .map(|(n, v)| (n.to_string(), ju(v)))
            .collect(),
    );
    let n_reports = reports.len() as u64;
    let doc = JVal::Obj(vec![
        ("chipmunk_campaign".into(), ju(super::store::STORE_VERSION)),
        ("spec".into(), spec.to_jval()),
        ("tasks".into(), ju(total as u64)),
        ("workloads".into(), ju(workloads)),
        ("totals".into(), totals_obj),
        ("state_bits_set".into(), ju(state_bits_set)),
        ("cov_bits_set".into(), ju(cov_bits_set)),
        ("reports".into(), JVal::Arr(reports)),
        ("fingerprint".into(), JVal::Str(format!("{fingerprint:016x}"))),
    ])
    .render()
        + "\n";
    store.io.write_atomic(&store.dir.join("campaign.json"), doc.as_bytes())?;

    Ok(Merged {
        doc,
        workloads,
        totals,
        reports: n_reports,
        state_bits_set,
        cov_bits_set,
        corpus_entries,
        fingerprint,
    })
}

/// What [`merge_read_only`] found: the store's health, without writing a
/// single byte. This is the triage surface for a degraded (read-only)
/// store — ENOSPC stops [`merge`], not the operator's ability to see what
/// survived.
#[derive(Debug, Default)]
pub struct MergeAudit {
    /// Tasks with a parseable committed result.
    pub committed: u64,
    /// Tasks whose result file exists but does not parse (left in place —
    /// a read-only audit never quarantines).
    pub corrupt: Vec<usize>,
    /// Tasks with no committed result.
    pub missing: Vec<usize>,
    /// Violation reports across all parseable results.
    pub reports: u64,
    /// Workloads across all parseable results.
    pub workloads: u64,
}

/// Read-only audit of the store: counts committed/corrupt/missing tasks
/// and surviving reports without writing anything. Serves `--resume`
/// triage when the store is in degraded (read-only) mode.
pub fn merge_read_only(store: &CampaignStore) -> MergeAudit {
    let total = store.spec.total_tasks();
    let mut audit = MergeAudit::default();
    for id in 0..total {
        match store.load_result(id) {
            Ok(Some(results)) => {
                audit.committed += 1;
                audit.workloads += results.len() as u64;
                audit.reports += results.iter().map(|r| r.reports.len() as u64).sum::<u64>();
            }
            Ok(None) => audit.missing.push(id),
            Err(_) => audit.corrupt.push(id),
        }
    }
    audit
}

/// Rounds of worker + merge before [`run_and_merge`] concludes the store
/// cannot converge. Each round only recurs when merge found (and
/// quarantined) a corrupt artifact, so this bounds healing, not work.
const MAX_MERGE_ROUNDS: u32 = 4;

/// Runs a worker to completion, then merges — and if the merge finds a
/// corrupt committed result (quarantining it), runs another worker pass to
/// re-produce the quarantined task and merges again, up to
/// [`MAX_MERGE_ROUNDS`] rounds. The returned summary is the final round's;
/// its host-I/O counters are cumulative (they live on the shared context).
pub fn run_and_merge(
    store: &CampaignStore,
    opts: &RunOpts,
) -> Result<(WorkerSummary, Merged), StoreError> {
    let mut rounds = 0u32;
    loop {
        let sum = run_worker(store, opts)?;
        if sum.interrupted {
            return Err(StoreError::fatal("worker interrupted before the campaign completed"));
        }
        match merge(store) {
            Ok(merged) => return Ok((sum, merged)),
            Err(e @ StoreError::Corrupt { .. }) if e.task_recoverable() => {
                rounds += 1;
                if rounds >= MAX_MERGE_ROUNDS {
                    return Err(StoreError::fatal(format!(
                        "merge kept finding corrupt results after {rounds} repair rounds; \
                         last error: {e}"
                    )));
                }
            }
            Err(e) => return Err(e),
        }
    }
}
