//! Ground-truth bug tracing for evaluation harnesses.
//!
//! When an injected bug's faulty branch actually executes, the file system
//! reports it to a shared [`BugTrace`]. The consistency checker never looks
//! at this — detection is entirely behavioural, as in the paper — but the
//! evaluation harnesses use the trace to *attribute* a detected violation to
//! the injected bug(s) whose code ran, when testing with the full
//! as-released bug set (Table 1 and Figure 3 reporting).

use std::{
    collections::BTreeSet,
    sync::Arc,
};

use parking_lot::Mutex;

use crate::bugs::BugId;

/// A shared sink recording which injected-bug code paths executed.
#[derive(Debug, Clone, Default)]
pub struct BugTrace {
    sink: Arc<Mutex<BTreeSet<BugId>>>,
}

impl BugTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `bug`'s faulty path executed.
    pub fn hit(&self, bug: BugId) {
        self.sink.lock().insert(bug);
    }

    /// The set of bugs whose faulty paths have executed.
    pub fn snapshot(&self) -> BTreeSet<BugId> {
        self.sink.lock().clone()
    }

    /// Merges another trace's [`BugTrace::snapshot`] into this one.
    pub fn absorb(&self, bugs: &BTreeSet<BugId>) {
        self.sink.lock().extend(bugs.iter().copied());
    }

    /// Clears the trace.
    pub fn clear(&self) {
        self.sink.lock().clear();
    }

    /// Whether `bug` has been traced.
    pub fn contains(&self, bug: BugId) -> bool {
        self.sink.lock().contains(&bug)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_clears() {
        let t = BugTrace::new();
        let u = t.clone();
        u.hit(BugId::B04);
        assert!(t.contains(BugId::B04));
        assert_eq!(t.snapshot().len(), 1);
        t.clear();
        assert!(!t.contains(BugId::B04));
    }
}
