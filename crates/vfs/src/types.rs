//! Common data types: file metadata, directory entries, descriptors, flags.

/// A file descriptor handle returned by [`crate::FileSystem::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u64);

/// The type of a file-system object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FileType {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
}

/// Metadata as returned by `stat`.
///
/// Timestamps are deliberately absent: Chipmunk does not check them (§6.2 —
/// the one Vinter bug Chipmunk cannot find is timestamp-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number.
    pub ino: u64,
    /// Object type.
    pub ftype: FileType,
    /// Link count.
    pub nlink: u64,
    /// Size in bytes.
    pub size: u64,
    /// Allocated blocks (in file-system block units).
    pub blocks: u64,
}

/// A directory entry as returned by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DirEntry {
    /// Entry name (single component, no slashes).
    pub name: String,
    /// Inode number of the target.
    pub ino: u64,
    /// Type of the target.
    pub ftype: FileType,
}

/// Flags for [`crate::FileSystem::open`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenFlags {
    /// Create the file if it does not exist.
    pub create: bool,
    /// With `create`: fail if the file already exists.
    pub excl: bool,
    /// Truncate to zero length on open.
    pub trunc: bool,
    /// Position writes at end of file.
    pub append: bool,
}

impl OpenFlags {
    /// Plain read/write open of an existing file.
    pub const RDWR: OpenFlags =
        OpenFlags { create: false, excl: false, trunc: false, append: false };

    /// `O_CREAT`: create if missing.
    pub const CREATE: OpenFlags =
        OpenFlags { create: true, excl: false, trunc: false, append: false };

    /// `O_CREAT | O_TRUNC`, the `creat(2)` combination.
    pub const CREAT_TRUNC: OpenFlags =
        OpenFlags { create: true, excl: false, trunc: true, append: false };

    /// `O_APPEND`.
    pub const APPEND: OpenFlags =
        OpenFlags { create: false, excl: false, trunc: false, append: true };
}

/// `fallocate(2)` modes supported by the tested file systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallocMode {
    /// Default mode: allocate and extend file size if needed.
    Allocate,
    /// `FALLOC_FL_KEEP_SIZE`: allocate without changing the reported size.
    KeepSize,
    /// `FALLOC_FL_ZERO_RANGE`: zero the given range.
    ZeroRange,
    /// `FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE`: deallocate the range.
    PunchHole,
}

impl FallocMode {
    /// All modes, for workload generation.
    pub const ALL: [FallocMode; 4] = [
        FallocMode::Allocate,
        FallocMode::KeepSize,
        FallocMode::ZeroRange,
        FallocMode::PunchHole,
    ];

    /// Short name used in workload descriptions.
    pub fn name(self) -> &'static str {
        match self {
            FallocMode::Allocate => "alloc",
            FallocMode::KeepSize => "keep_size",
            FallocMode::ZeroRange => "zero_range",
            FallocMode::PunchHole => "punch_hole",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falloc_mode_names_unique() {
        let names: std::collections::HashSet<_> =
            FallocMode::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn open_flag_presets() {
        // Compile-time invariants of the preset constants.
        const _: () = assert!(
            OpenFlags::CREAT_TRUNC.create
                && OpenFlags::CREAT_TRUNC.trunc
                && !OpenFlags::RDWR.create
                && OpenFlags::APPEND.append
        );
    }
}
