#![warn(missing_docs)]

//! A NOVA-style log-structured PM file system (FAST '16), with the
//! NOVA-Fortis (SOSP '17) resilience extensions as a mount mode.
//!
//! Architecture, mirroring the paper's description of NOVA (§2, §5):
//!
//! * **Per-inode logs.** Every inode owns a linked list of 4 KiB log pages
//!   holding append-only entries: directory entries (and their
//!   invalidations), copy-on-write file-write entries, and set-attribute
//!   entries. The log tail in the inode is advanced with an atomic 8-byte
//!   persistent store after the entries are durable.
//! * **Copy-on-write data.** File writes allocate fresh blocks, write them
//!   with non-temporal stores, and only then append a log entry mapping
//!   them into the file.
//! * **A lite journal** makes multi-word metadata transactions (rename,
//!   link, unlink, and tail+attribute updates in the write path) atomic:
//!   an undo journal of (address, old value) word records.
//! * **Volatile state rebuilt at mount.** Block allocator, per-file block
//!   maps, directory hash tables, and sizes live in DRAM and are rebuilt by
//!   scanning every inode's log at mount — the error-prone recovery code the
//!   paper's Observation 3 is about.
//! * **NOVA-Fortis mode** adds inode checksums, replica inodes, file-data
//!   block checksums, and a persistent deallocation record — the resilience
//!   machinery behind bugs 9–12.
//!
//! The eight NOVA bugs and four NOVA-Fortis bugs of Table 1 are injected
//! here, each guarded by [`vfs::BugSet`] (see `vfs::bugs` for the catalog).

pub mod fsimpl;
pub mod journal;
pub mod layout;
pub mod rebuild;
pub mod state;

pub use fsimpl::Nova;

use pmem::PmBackend;
use vfs::{
    fs::{FsKind, FsOptions, Guarantees},
    FsName, FsResult,
};

/// Factory for [`Nova`] instances.
#[derive(Debug, Clone, Default)]
pub struct NovaKind {
    /// Construction options (bug set, coverage, trace).
    pub opts: FsOptions,
    /// Mount in NOVA-Fortis mode (checksums, replicas, dealloc records).
    pub fortis: bool,
}

impl NovaKind {
    /// A NOVA-Fortis factory with the given options.
    pub fn fortis(opts: FsOptions) -> Self {
        NovaKind { opts, fortis: true }
    }
}

impl FsKind for NovaKind {
    type Fs<D: PmBackend> = Nova<D>;

    fn name(&self) -> FsName {
        if self.fortis {
            FsName::NovaFortis
        } else {
            FsName::Nova
        }
    }

    fn options(&self) -> &FsOptions {
        &self.opts
    }

    fn with_options(&self, opts: FsOptions) -> Self {
        Self { opts, ..self.clone() }
    }

    fn guarantees(&self) -> Guarantees {
        // NOVA is synchronous and atomic for metadata; data writes are
        // copy-on-write and effectively atomic per write, but NOVA does not
        // guarantee multi-block write atomicity, so Chipmunk applies the
        // relaxed data check. Fortis additionally checksums file data, so
        // torn bytes can flip a read into an error: data content stays
        // verdict-relevant there.
        Guarantees { strong: true, atomic_data_writes: false, data_checksums: self.fortis }
    }

    fn mkfs<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        Nova::mkfs(dev, &self.opts, self.fortis)
    }

    fn mount<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        Nova::mount(dev, &self.opts, self.fortis)
    }

    fn fork_fs<D: pmem::PmBackend + Clone>(&self, fs: &Self::Fs<D>) -> Option<Self::Fs<D>> {
        Some(fs.clone())
    }
}
