//! A short Syzkaller-style fuzzing session against WineFS (as released),
//! with coverage feedback and triaged bug-report clusters — the paper's
//! long-running testing mode in miniature (§3.4.2).
//!
//! ```sh
//! cargo run --release --example fuzz_session
//! ```

use chipmunk::{report::triage, test_workload, BugReport, TestConfig};
use vfs::{
    fs::{FsKind, FsOptions},
    BugSet, Cov,
};
use winefs::WineFsKind;
use workloads::fuzz::{FuzzConfig, Fuzzer};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);

    let kind = WineFsKind {
        opts: FsOptions {
            bugs: BugSet::as_released(),
            cov: Cov::enabled(),
            ..Default::default()
        },
        strict: true,
    };
    // The paper's fuzzing configuration: crash-state cap of two writes.
    let cfg = TestConfig::fuzzing();

    let mut fuzzer = Fuzzer::new(0x5eed, FuzzConfig::default());
    let mut global_cov = std::collections::HashSet::new();
    let mut reports: Vec<BugReport> = Vec::new();
    let mut states = 0u64;

    println!("fuzzing WineFS (as released) for {budget} workloads...");
    for i in 0..budget {
        let w = fuzzer.next_workload();
        kind.options().cov.clear();
        let out = test_workload(&kind, &w, &cfg);
        states += out.crash_states;
        let new_bits = kind.options().cov.merge_into(&mut global_cov);
        fuzzer.feedback(&w, new_bits);
        if let Some(r) = out.reports.into_iter().next() {
            reports.push(r);
        }
        if (i + 1) % 200 == 0 {
            println!(
                "  {:>5} workloads | {:>6} crash states | {:>4} coverage points | {:>3} raw \
                 reports | corpus {}",
                i + 1,
                states,
                global_cov.len(),
                reports.len(),
                fuzzer.corpus_len()
            );
        }
    }

    println!("\nraw bug reports: {} (first three as JSON for external triage):", reports.len());
    for r in reports.iter().take(3) {
        println!("  {}", r.to_json());
    }
    let clusters = triage(&reports, 0.4);
    println!("triaged clusters (distinct suspected root causes): {}\n", clusters.len());
    for (i, cluster) in clusters.iter().enumerate() {
        let representative = &reports[cluster[0]];
        println!(
            "cluster {:>2} ({} duplicates) — {} during {}",
            i + 1,
            cluster.len(),
            representative.violation.class(),
            representative.op_desc
        );
        println!("    {}", representative.violation.detail());
    }
}
