//! Shared device handles and sub-range windows.
//!
//! SplitFS splits one PM device between its user-space component (staging
//! files, operation log) and the region managed by its ext4-DAX-style kernel
//! component. Both components must issue I/O against the *same* underlying
//! device so that the logger observes one coherent write stream.
//! [`SharedDev`] provides a cloneable handle to a single backend and
//! [`Window`] exposes an offset/length sub-range of it.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::{backend::PmBackend, cost::SimCost};

/// A cloneable shared handle to a PM backend.
///
/// The handle is `Send` (an `Arc<Mutex<_>>`) so a file system built on it can
/// move between scheduler worker threads along with the rest of a prefix
/// checkpoint. The mutex is never contended: workloads are executed
/// sequentially (the paper runs one system call at a time, §3.1), so every
/// lock is the uncontended fast path — this is ownership transfer, not
/// concurrent access.
pub struct SharedDev<D> {
    inner: Arc<Mutex<D>>,
}

impl<D> Clone for SharedDev<D> {
    fn clone(&self) -> Self {
        SharedDev { inner: Arc::clone(&self.inner) }
    }
}

impl<D: PmBackend> SharedDev<D> {
    /// Wraps `dev` in a shared handle.
    pub fn new(dev: D) -> Self {
        SharedDev { inner: Arc::new(Mutex::new(dev)) }
    }

    fn lock(&self) -> MutexGuard<'_, D> {
        self.inner.lock().expect("SharedDev poisoned")
    }

    /// Runs `f` with mutable access to the underlying device.
    pub fn with<R>(&self, f: impl FnOnce(&mut D) -> R) -> R {
        f(&mut self.lock())
    }

    /// Creates a window exposing `[base, base + len)` of this device.
    ///
    /// # Panics
    ///
    /// Panics if the window extends past the end of the device.
    pub fn window(&self, base: u64, len: u64) -> Window<D> {
        let dev_len = self.lock().len();
        assert!(
            base.checked_add(len).is_some_and(|e| e <= dev_len),
            "window [{base}, +{len}) out of range for device of {dev_len} bytes"
        );
        Window { dev: self.clone(), base, win_len: len }
    }
}

impl<D: PmBackend> PmBackend for SharedDev<D> {
    fn len(&self) -> u64 {
        self.lock().len()
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        self.lock().read(off, buf);
    }

    fn store(&mut self, off: u64, data: &[u8]) {
        self.lock().store(off, data);
    }

    fn memcpy_nt(&mut self, off: u64, data: &[u8]) {
        self.lock().memcpy_nt(off, data);
    }

    fn memset_nt(&mut self, off: u64, val: u8, len: u64) {
        self.lock().memset_nt(off, val, len);
    }

    fn flush(&mut self, off: u64, len: u64) {
        self.lock().flush(off, len);
    }

    fn fence(&mut self) {
        self.lock().fence();
    }

    fn note_media_read(&mut self, len: u64) {
        self.lock().note_media_read(len);
    }

    fn sim_cost(&self) -> SimCost {
        self.lock().sim_cost()
    }
}

/// An offset window into a shared device. All offsets are translated by
/// `base` before being forwarded, so the bottom-level logger still observes
/// absolute device offsets.
pub struct Window<D> {
    dev: SharedDev<D>,
    base: u64,
    win_len: u64,
}

impl<D: PmBackend> Window<D> {
    /// The absolute device offset this window starts at.
    pub fn base(&self) -> u64 {
        self.base
    }

    fn translate(&self, off: u64, len: usize) -> u64 {
        assert!(
            off.checked_add(len as u64).is_some_and(|e| e <= self.win_len),
            "window access out of range: off={off} len={len} window={}",
            self.win_len
        );
        self.base + off
    }
}

impl<D: PmBackend> Clone for Window<D> {
    fn clone(&self) -> Self {
        Window { dev: self.dev.clone(), base: self.base, win_len: self.win_len }
    }
}

impl<D: PmBackend> PmBackend for Window<D> {
    fn len(&self) -> u64 {
        self.win_len
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        let abs = self.translate(off, buf.len());
        self.dev.read(abs, buf);
    }

    fn store(&mut self, off: u64, data: &[u8]) {
        let abs = self.translate(off, data.len());
        self.dev.store(abs, data);
    }

    fn memcpy_nt(&mut self, off: u64, data: &[u8]) {
        let abs = self.translate(off, data.len());
        self.dev.memcpy_nt(abs, data);
    }

    fn memset_nt(&mut self, off: u64, val: u8, len: u64) {
        let abs = self.translate(off, len as usize);
        self.dev.memset_nt(abs, val, len);
    }

    fn flush(&mut self, off: u64, len: u64) {
        let abs = self.translate(off, len as usize);
        self.dev.flush(abs, len);
    }

    fn fence(&mut self) {
        self.dev.fence();
    }

    fn note_media_read(&mut self, len: u64) {
        self.dev.note_media_read(len);
    }

    fn sim_cost(&self) -> SimCost {
        self.dev.sim_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::PmDevice;

    #[test]
    fn window_translates_offsets() {
        let shared = SharedDev::new(PmDevice::new(8192));
        let mut win = shared.window(4096, 4096);
        win.store(0, b"abcd");
        win.flush(0, 4);
        win.fence();
        // Visible at absolute offset 4096 on the underlying device.
        shared.with(|d| {
            assert_eq!(&d.persistent_image()[4096..4100], b"abcd");
        });
        let mut b = [0u8; 4];
        win.read(0, &mut b);
        assert_eq!(&b, b"abcd");
    }

    #[test]
    fn two_windows_share_fences() {
        let shared = SharedDev::new(PmDevice::new(8192));
        let mut a = shared.window(0, 4096);
        let mut b = shared.window(4096, 4096);
        a.memcpy_nt(0, &[1u8; 8]);
        b.memcpy_nt(0, &[2u8; 8]);
        shared.with(|d| assert_eq!(d.inflight().len(), 2));
        a.fence();
        shared.with(|d| {
            assert!(d.inflight().is_empty());
            assert_eq!(d.persistent_image()[0], 1);
            assert_eq!(d.persistent_image()[4096], 2);
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_bounds_enforced() {
        let shared = SharedDev::new(PmDevice::new(8192));
        let mut win = shared.window(0, 64);
        win.store(60, &[0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_creation_bounds_enforced() {
        let shared = SharedDev::new(PmDevice::new(100));
        let _ = shared.window(64, 64);
    }
}
