//! Crash-state generation: in-flight tracking, coalescing, subset
//! enumeration (§3.3), and the delta replayer that steps between adjacent
//! crash states instead of rebuilding each from scratch.

use pmem::{write_delta, CowDevice, ImageKey, PmBackend, UndoMark};
use pmlog::LogEntry;

/// One logical in-flight write awaiting a fence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingWrite {
    /// Destination offset.
    pub off: u64,
    /// Data.
    pub data: Vec<u8>,
    /// Whether the write came from a non-temporal store (candidate for
    /// data-write coalescing).
    pub nt: bool,
}

impl PendingWrite {
    /// Builds from a log write entry.
    pub fn from_entry(e: &LogEntry) -> Option<PendingWrite> {
        match e {
            LogEntry::Nt { off, data } => {
                Some(PendingWrite { off: *off, data: data.clone(), nt: true })
            }
            LogEntry::Flush { off, data } => {
                Some(PendingWrite { off: *off, data: data.clone(), nt: false })
            }
            // Plain stores appear only in eADR logs, where they are durable
            // on landing.
            LogEntry::Store { off, data } => {
                Some(PendingWrite { off: *off, data: data.clone(), nt: false })
            }
            _ => None,
        }
    }
}

/// Coalesces address-contiguous consecutive non-temporal writes into single
/// logical writes — the paper's file-data heuristic: a large non-temporal
/// memcpy "usually indicates a file data write", and replaying its pieces
/// independently adds states without adding bugs found.
pub fn coalesce(writes: &[PendingWrite]) -> Vec<PendingWrite> {
    let mut out: Vec<PendingWrite> = Vec::with_capacity(writes.len());
    for w in writes {
        if let Some(last) = out.last_mut() {
            if last.nt && w.nt && last.off + last.data.len() as u64 == w.off {
                last.data.extend_from_slice(&w.data);
                continue;
            }
        }
        out.push(w.clone());
    }
    out
}

/// Enumerates the subsets of `n` in-flight writes to replay, in increasing
/// subset size (Observation 7: buggy crash states usually involve few
/// writes, so small subsets first finds bugs quickly).
///
/// The empty subset is excluded (it equals the already-checked base state).
/// With a `cap`, subsets larger than the cap are skipped but the *full* set
/// is always included — it is the state an actual crash immediately before
/// the fence would most plausibly leave, and it is the next base. At most
/// `max_states` subsets are returned.
pub fn enumerate_subsets(n: usize, cap: Option<usize>, max_states: u64) -> Vec<Vec<usize>> {
    enumerate_subsets_ordered(n, cap, max_states, false)
}

/// [`enumerate_subsets`] with an explicit size order. `large_first` visits
/// big subsets before small ones — the ablation control for Observation 7
/// (with stop-on-first, small-first should reach the buggy state in far
/// fewer mounts, because buggy crash states usually involve few writes).
pub fn enumerate_subsets_ordered(
    n: usize,
    cap: Option<usize>,
    max_states: u64,
    large_first: bool,
) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let limit = cap.unwrap_or(n).min(n);
    let sizes: Vec<usize> = if large_first {
        (1..=limit).rev().collect()
    } else {
        (1..=limit).collect()
    };
    // The full set must always be present (it is the state a crash
    // immediately before the fence would most plausibly leave, and it is the
    // next base). Unless the enumeration itself reaches it within budget, a
    // slot is reserved for it up front so appending it never exceeds
    // `max_states` and never overwrites an already-enumerated subset.
    let available: u64 = sizes.iter().fold(0u64, |acc, &k| acc.saturating_add(binom(n, k)));
    let full_within_enum = limit == n && (large_first || available <= max_states);
    let budget = if full_within_enum { max_states } else { max_states.saturating_sub(1) };
    'outer: for size in sizes {
        for combo in Combinations::new(n, size) {
            if out.len() as u64 >= budget {
                break 'outer;
            }
            out.push(combo);
        }
    }
    if !full_within_enum {
        out.push((0..n).collect());
    }
    out
}

/// Binomial coefficient with saturating arithmetic (only compared against
/// state budgets, so saturation on huge inputs is harmless).
fn binom(n: usize, k: usize) -> u64 {
    let k = k.min(n - k);
    let mut r: u64 = 1;
    for i in 0..k {
        r = r.saturating_mul((n - i) as u64) / (i as u64 + 1);
    }
    r
}

/// Iterator over k-combinations of `0..n` in lexicographic order.
struct Combinations {
    n: usize,
    k: usize,
    cur: Vec<usize>,
    done: bool,
}

impl Combinations {
    fn new(n: usize, k: usize) -> Self {
        Combinations { n, k, cur: (0..k).collect(), done: k > n }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let item = self.cur.clone();
        // Advance.
        let mut i = self.k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.cur[i] < self.n - (self.k - i) {
                self.cur[i] += 1;
                for j in i + 1..self.k {
                    self.cur[j] = self.cur[j - 1] + 1;
                }
                break;
            }
        }
        Some(item)
    }
}

/// Applies the writes selected by `subset` (in program order) onto `img`.
pub fn apply_subset(img: &mut pmem::CowDevice<'_>, writes: &[PendingWrite], subset: &[usize]) {
    let mut order = subset.to_vec();
    order.sort_unstable();
    for &i in &order {
        img.apply(writes[i].off, &writes[i].data);
    }
}

/// Delta replayer over the crash states of one crash point.
///
/// Holds a single undo-logged [`CowDevice`] over the point's base image and
/// steps it between subsets with [`SubsetWalker::goto`]: the applied writes
/// form a stack, and moving to the next subset pops to the common prefix
/// and pushes the rest — consecutive subsets in the canonical enumeration
/// share long prefixes, so transitions replay O(1) writes on average rather
/// than rebuilding the whole overlay.
///
/// Alongside the device, the walker maintains the state's [`ImageKey`]
/// incrementally (the XOR-composable content hash — see [`pmem::hash`]):
/// each applied write XORs in its byte-level delta, and each pop restores
/// the key snapshot taken at push time. The key therefore always equals
/// `pmem::image_key` of the materialized state, independent of the path
/// taken to reach it.
///
/// Checker mutations (mount-time recovery, the usability probe) roll back
/// through the same undo log: take a [`SubsetWalker::mark`] before
/// mounting, mount on `&mut *walker.device()`, and
/// [`SubsetWalker::undo_to`] afterwards. The key is untouched by this —
/// it tracks the *replayed* state, not transient checker writes.
pub struct SubsetWalker<'a> {
    cow: CowDevice<'a>,
    /// Applied write indices with, per entry, the undo mark and key value
    /// captured just before applying it.
    stack: Vec<(usize, UndoMark, ImageKey)>,
    key: ImageKey,
    scratch: Vec<u8>,
}

impl<'a> SubsetWalker<'a> {
    /// A walker positioned at the bare base state. `base_key` must be the
    /// [`ImageKey`] of `base` (maintained incrementally by the caller as
    /// the base evolves across fences; `pmem::image_key(base)` to seed).
    pub fn new(base: &'a [u8], base_key: ImageKey) -> Self {
        SubsetWalker {
            cow: CowDevice::new_with_undo(base),
            stack: Vec::new(),
            key: base_key,
            scratch: Vec::new(),
        }
    }

    /// Moves the device to the state `base + subset`. `subset` must be
    /// sorted ascending (enumeration order), matching program-order replay.
    pub fn goto(&mut self, writes: &[PendingWrite], subset: &[usize]) {
        debug_assert!(subset.windows(2).all(|w| w[0] < w[1]), "subset must be sorted");
        // Pop to the longest stack prefix that is also a prefix of `subset`.
        let mut common = 0;
        while common < self.stack.len()
            && common < subset.len()
            && self.stack[common].0 == subset[common]
        {
            common += 1;
        }
        while self.stack.len() > common {
            let (_, mark, key) = self.stack.pop().expect("len > common >= 0");
            self.cow.undo_to(mark);
            self.key = key;
        }
        for &i in &subset[common..] {
            self.push_write(writes, i);
        }
    }

    fn push_write(&mut self, writes: &[PendingWrite], i: usize) {
        let w = &writes[i];
        let mark = self.cow.mark();
        let key = self.key;
        self.scratch.resize(w.data.len(), 0);
        self.cow.read(w.off, &mut self.scratch);
        self.key ^= write_delta(w.off, &self.scratch, &w.data);
        self.cow.apply(w.off, &w.data);
        self.stack.push((i, mark, key));
    }

    /// The [`ImageKey`] of the current state.
    pub fn key(&self) -> ImageKey {
        self.key
    }

    /// The device, positioned at the current state. Mount on `&mut *dev`
    /// (not by value) so the walker keeps ownership.
    pub fn device(&mut self) -> &mut CowDevice<'a> {
        &mut self.cow
    }

    /// Undo mark protecting subsequent checker mutations.
    pub fn mark(&self) -> UndoMark {
        self.cow.mark()
    }

    /// Rolls checker mutations back to `mark`.
    pub fn undo_to(&mut self, mark: UndoMark) {
        self.cow.undo_to(mark);
    }
}

/// 128-bit key identifying the *effective* bytes a subset lays over the
/// base image — the byte image after program-order replay, independent of
/// which particular writes produced it.
///
/// Two subsets that overlay identical bytes at identical offsets get equal
/// keys even when they differ as index sets (e.g. `{1}` vs `{0, 1}` when
/// write 1 fully covers write 0, or adjacent writes vs one coalesced write
/// spanning both ranges). The harness uses this for its crash-state dedup
/// cache: such states mount and check identically, so the second one can
/// reuse the first one's result.
pub fn state_key(writes: &[PendingWrite], subset: &[usize]) -> u128 {
    let mut order = subset.to_vec();
    order.sort_unstable();
    let segs = effective_segs(writes, &order, &[]);
    // Key = XOR of a structural term per maximal contiguous run plus the
    // word-wise content scan of each segment (zero words skipped — replayed
    // bytes are mostly sparse). Different segmentations of the same byte
    // image produce the same maximal runs and the same per-byte terms, so
    // they hash identically; the run term keeps an all-zero run distinct
    // from an unwritten one. Unlike the old byte-at-a-time FNV feed, every
    // segment is scanned 8 bytes per step straight out of the borrowed
    // write data — no per-subset image materialization.
    let mut key: ImageKey = 0;
    let mut i = 0;
    while i < segs.len() {
        let start = segs[i].0;
        let mut end = start;
        while i < segs.len() && segs[i].0 == end {
            key ^= pmem::span_key(end, segs[i].1);
            end += segs[i].1.len() as u64;
            i += 1;
        }
        key ^= pmem::run_term(start, end - start);
    }
    key
}

/// One latest-writer-wins segment: absolute offset, the surviving bytes,
/// and whether they came from a data-classed write (see [`DATA_SIG_BYTES`]).
type Seg<'a> = (u64, &'a [u8], bool);

/// A non-temporal write at least this large is treated as file data by the
/// behavioral signature, mirroring the paper's file-data heuristic in
/// [`coalesce`]. When the crash point's check relaxes data tears
/// (`DataRelax::Torn` on an FS without read-path data checksums, with every
/// in-flight write attributable to the relaxed op), data-classed writes are
/// dropped from the signature entirely — the comparison accepts any mix of
/// their old/new/zero bytes, so neither their content nor their membership
/// can change a verdict. Everywhere else they sign content-exact, like
/// metadata.
pub const DATA_SIG_BYTES: usize = 256;

/// Latest-writer-wins segments of `absorbed ++ writes[subset]` in program
/// order (`absorbed` writes are all included and precede the subset).
/// `subset` must be sorted ascending. Segments are returned sorted by
/// offset; each carries the data-class flag of its originating write.
fn effective_segs<'a>(
    writes: &'a [PendingWrite],
    subset: &[usize],
    absorbed: &'a [PendingWrite],
) -> Vec<Seg<'a>> {
    let mut segs: Vec<Seg<'a>> = Vec::new();
    let mut covered: Vec<(u64, u64)> = Vec::new(); // sorted, disjoint [start, end)
    let mut visit = |w: &'a PendingWrite| {
        let data_class = w.nt && w.data.len() >= DATA_SIG_BYTES;
        let (ws, we) = (w.off, w.off + w.data.len() as u64);
        let mut cur = ws;
        for &(cs, ce) in covered.iter() {
            if ce <= cur {
                continue;
            }
            if cs >= we {
                break;
            }
            let hole_end = cs.min(we);
            if cur < hole_end {
                segs.push((
                    cur,
                    &w.data[(cur - ws) as usize..(hole_end - ws) as usize],
                    data_class,
                ));
            }
            cur = cur.max(ce);
            if cur >= we {
                break;
            }
        }
        if cur < we {
            segs.push((cur, &w.data[(cur - ws) as usize..(we - ws) as usize], data_class));
        }
        insert_interval(&mut covered, ws, we);
    };
    // Reverse program order: the subset's writes land after (and therefore
    // shadow) the already-absorbed ones.
    for &i in subset.iter().rev() {
        visit(&writes[i]);
    }
    for w in absorbed.iter().rev() {
        visit(w);
    }
    segs.sort_by_key(|&(o, _, _)| o);
    segs
}

/// Behavioral signature of a crash state, for representative-state
/// clustering ([`TestConfig::rep_check`](crate::TestConfig)): the state is
/// described as the *cumulative* overlay the current op has laid over its
/// entry image — every write absorbed at a fence since the op began
/// (`absorbed`), plus the chosen `subset` of the still-in-flight `writes`.
///
/// Anchoring the signature at the op's entry image makes it comparable
/// across the crash points *inside* one op (which share the same oracle
/// references): the base state at fence k+1 signs identically to the full
/// in-flight set at fence k, because both are the same cumulative overlay.
///
/// Metadata-classed segments (small or store/flush-sourced) contribute
/// exact position + content terms — a journal commit word with a different
/// value is a behaviorally different state. Data-classed segments (large
/// non-temporal writes, see [`DATA_SIG_BYTES`]) depend on `drop_data`: when
/// the caller has proven the point's check tolerates every byte the data
/// writes can leave (torn-data relaxation on the written file, no read-path
/// checksums, all in-flight writes issued by the relaxed op, no data write
/// shadowing another), they are omitted — content *and* membership — so the
/// `2^k` data-membership choices collapse into one class per metadata
/// shape. Otherwise data segments sign content-exact like metadata, under a
/// distinct tag so a data run can never alias a metadata run.
pub fn behavior_sig(
    writes: &[PendingWrite],
    subset: &[usize],
    absorbed: &[PendingWrite],
    drop_data: bool,
) -> u128 {
    let mut order = subset.to_vec();
    order.sort_unstable();
    let segs = effective_segs(writes, &order, absorbed);
    let mut sig: u128 = 0;
    for &(off, bytes, data_class) in &segs {
        let len = bytes.len() as u64;
        if data_class && drop_data {
            continue;
        }
        let tag = if data_class { DATA_TAG } else { META_TAG };
        sig ^= pmem::run_term(tag ^ off, len);
        sig ^= pmem::span_key(off, bytes);
    }
    sig
}

/// Signature tag for metadata-classed segments.
const META_TAG: u64 = 0x5da2_7d06_a1b2_c3d4;
/// Signature tag for data-classed segments.
const DATA_TAG: u64 = 0x9e11_83c5_4f6e_7a80;

/// Per-crash-point cache for [`behavior_sig`].
///
/// Signing hashes every member write's content, and a crash point signs
/// every one of its (often hundreds of) subsets — re-hashing a 4 KiB data
/// write per subset dominates the whole representative layer's cost. When
/// no two writes (in-flight or absorbed) overlap in bytes, latest-writer-
/// wins segmentation is the identity: every visited write survives whole,
/// so a subset's signature is the XOR of one precomputed term per member
/// plus the constant absorbed term — `O(|subset|)` XORs per state. Points
/// with overlapping writes fall back to [`behavior_sig`] verbatim, so the
/// cached signature is bit-identical to the direct one everywhere.
pub struct SigCache<'a> {
    writes: &'a [PendingWrite],
    absorbed: &'a [PendingWrite],
    drop_data: bool,
    /// One term per in-flight write plus the folded absorbed term; `None`
    /// when some pair of writes overlaps (fall back to [`behavior_sig`]).
    fast: Option<(Vec<u128>, u128)>,
}

impl<'a> SigCache<'a> {
    /// Precomputes per-write terms for one crash point.
    pub fn new(writes: &'a [PendingWrite], absorbed: &'a [PendingWrite], drop_data: bool) -> Self {
        let mut spans: Vec<(u64, u64)> = writes
            .iter()
            .chain(absorbed)
            .filter(|w| !w.data.is_empty())
            .map(|w| (w.off, w.off + w.data.len() as u64))
            .collect();
        spans.sort_unstable();
        let overlap = spans.windows(2).any(|p| p[1].0 < p[0].1);
        let fast = (!overlap).then(|| {
            let term = |w: &PendingWrite| write_term(w, drop_data);
            (
                writes.iter().map(term).collect(),
                absorbed.iter().map(term).fold(0, |a, t| a ^ t),
            )
        });
        SigCache { writes, absorbed, drop_data, fast }
    }

    /// [`behavior_sig`] of `subset`, served from the cache when possible.
    pub fn sig(&self, subset: &[usize]) -> u128 {
        match &self.fast {
            Some((terms, abs)) => subset.iter().fold(*abs, |a, &i| a ^ terms[i]),
            None => behavior_sig(self.writes, subset, self.absorbed, self.drop_data),
        }
    }
}

/// The signature contribution of one whole (unshadowed) write.
fn write_term(w: &PendingWrite, drop_data: bool) -> u128 {
    let data_class = w.nt && w.data.len() >= DATA_SIG_BYTES;
    if w.data.is_empty() || (data_class && drop_data) {
        return 0;
    }
    let tag = if data_class { DATA_TAG } else { META_TAG };
    pmem::run_term(tag ^ w.off, w.data.len() as u64) ^ pmem::span_key(w.off, &w.data)
}

/// Whether dropping the in-flight data-classed writes from a behavioral
/// signature could hide an intermediate value the torn-data relaxation does
/// not tolerate.
///
/// Within a class all metadata writes are fixed and only data membership
/// varies, so a member state's byte at any position is either whatever the
/// representative (the fewest-data-writes member) already exposed there —
/// any violation in that is caught on the representative and expands the
/// class — or the value of the last applied data write covering it. The
/// latter is always tolerated when it is the position's *final* data value
/// (the checker's `new`), zero (explicitly tolerated, the zero-fill of a
/// freshly allocated block), or equal to every later writer's byte. So the
/// drop is only unsafe when an earlier data write holds, somewhere a later
/// data write also covers, a byte that is neither zero nor the later
/// write's byte: a subset applying the earlier but not the later writer
/// would surface it. Absorbed writes need no veto — they are applied in
/// every member, representative included.
///
/// Membership in `subset` cannot influence any of this, so it is decided
/// once per crash point.
pub fn data_shadowing_unsafe(writes: &[PendingWrite]) -> bool {
    let data: Vec<&PendingWrite> =
        writes.iter().filter(|w| w.nt && w.data.len() >= DATA_SIG_BYTES).collect();
    for (i, early) in data.iter().enumerate() {
        for late in &data[i + 1..] {
            let s = early.off.max(late.off);
            let e = (early.off + early.data.len() as u64).min(late.off + late.data.len() as u64);
            for p in s..e {
                let a = early.data[(p - early.off) as usize];
                if a != 0 && a != late.data[(p - late.off) as usize] {
                    return true;
                }
            }
        }
    }
    false
}

/// Merges `[ws, we)` into a sorted list of disjoint intervals.
fn insert_interval(covered: &mut Vec<(u64, u64)>, ws: u64, we: u64) {
    if ws >= we {
        return;
    }
    let mut merged = (ws, we);
    let mut out = Vec::with_capacity(covered.len() + 1);
    let mut placed = false;
    for &(cs, ce) in covered.iter() {
        if ce < merged.0 {
            out.push((cs, ce));
        } else if cs > merged.1 {
            if !placed {
                out.push(merged);
                placed = true;
            }
            out.push((cs, ce));
        } else {
            merged = (merged.0.min(cs), merged.1.max(ce));
        }
    }
    if !placed {
        out.push(merged);
    }
    *covered = out;
}

/// Human-readable description of a subset for bug reports.
pub fn describe_subset(writes: &[PendingWrite], subset: &[usize]) -> String {
    let parts: Vec<String> = subset
        .iter()
        .map(|&i| {
            let w = &writes[i];
            format!(
                "{}#{i}@{:#x}+{}",
                if w.nt { "nt" } else { "flush" },
                w.off,
                w.data.len()
            )
        })
        .collect();
    format!("[{}] of {} in-flight", parts.join(", "), writes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_cache_matches_behavior_sig_exactly() {
        // A deterministic pseudo-random byte per (seed, index).
        let byte = |seed: u64, i: u64| -> u8 {
            (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i).wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8
        };
        let wr = |seed: u64, off: u64, len: usize, nt: bool| PendingWrite {
            off,
            data: (0..len as u64).map(|i| byte(seed, i)).collect(),
            nt,
        };
        // Disjoint, overlapping, shadowing, empty, and data-classed writes;
        // absorbed writes both clear of and under the in-flight ones.
        let cases: Vec<(Vec<PendingWrite>, Vec<PendingWrite>)> = vec![
            (vec![wr(1, 0, 16, false), wr(2, 64, 8, true), wr(3, 512, 300, true)], vec![]),
            (vec![wr(4, 10, 30, false), wr(5, 20, 40, true), wr(6, 25, 5, false)], vec![]),
            (vec![wr(7, 0, 8, false), wr(8, 0, 8, false)], vec![wr(9, 100, 8, true)]),
            (vec![wr(10, 40, 0, false), wr(11, 48, 8, true)], vec![wr(12, 48, 4, false)]),
            (vec![wr(13, 0, 256, true), wr(14, 1024, 256, true)], vec![wr(15, 4096, 16, false)]),
        ];
        for (writes, absorbed) in &cases {
            for drop_data in [false, true] {
                let cache = SigCache::new(writes, absorbed, drop_data);
                for subset in enumerate_subsets(writes.len(), None, u64::MAX) {
                    assert_eq!(
                        cache.sig(&subset),
                        behavior_sig(writes, &subset, absorbed, drop_data),
                        "writes {writes:?} subset {subset:?} drop {drop_data}"
                    );
                }
            }
        }
    }

    #[test]
    fn subsets_of_three_exhaustive() {
        let s = enumerate_subsets(3, None, 1 << 20);
        // 2^3 - 1 = 7 non-empty subsets.
        assert_eq!(s.len(), 7);
        // Ordered by size.
        assert!(s[0].len() == 1 && s[1].len() == 1 && s[2].len() == 1);
        assert!(s[3].len() == 2 && s[6].len() == 3);
        // All distinct.
        let set: std::collections::HashSet<Vec<usize>> = s.iter().cloned().collect();
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn paper_counts_hold() {
        // "For n in-flight writes, there will be 2^n - 1 crash states."
        for n in 1..=10 {
            let s = enumerate_subsets(n, None, u64::MAX);
            assert_eq!(s.len(), (1usize << n) - 1, "n={n}");
        }
    }

    #[test]
    fn cap_keeps_small_subsets_plus_full() {
        let s = enumerate_subsets(5, Some(2), 1 << 20);
        // C(5,1) + C(5,2) + full = 5 + 10 + 1.
        assert_eq!(s.len(), 16);
        assert_eq!(s.last().unwrap().len(), 5);
        assert!(s[..15].iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn cap_equal_to_n_is_exhaustive_without_duplicate_full() {
        let s = enumerate_subsets(3, Some(3), 1 << 20);
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn large_first_reverses_size_order_only() {
        let small = enumerate_subsets_ordered(4, None, u64::MAX, false);
        let large = enumerate_subsets_ordered(4, None, u64::MAX, true);
        assert_eq!(small.len(), 15);
        assert_eq!(large.len(), 15);
        // Same subsets, opposite size progression.
        let a: std::collections::HashSet<Vec<usize>> = small.iter().cloned().collect();
        let b: std::collections::HashSet<Vec<usize>> = large.iter().cloned().collect();
        assert_eq!(a, b);
        assert_eq!(small[0].len(), 1);
        assert_eq!(large[0].len(), 4);
        assert_eq!(small.last().unwrap().len(), 4);
        assert_eq!(large.last().unwrap().len(), 1);
    }

    #[test]
    fn large_first_with_cap_still_includes_full_set() {
        let s = enumerate_subsets_ordered(5, Some(2), 1 << 20, true);
        assert!(s.iter().any(|c| c.len() == 5));
        assert_eq!(s[0].len(), 2);
    }

    #[test]
    fn max_states_truncates() {
        let s = enumerate_subsets(10, None, 20);
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn zero_inflight_yields_nothing() {
        assert!(enumerate_subsets(0, None, 100).is_empty());
    }

    #[test]
    fn truncation_with_cap_preserves_budget_without_losing_enumerated_subsets() {
        // Regression: `out.len() == max_states && limit < n` used to
        // overwrite the last enumerated subset with the full set. The budget
        // now reserves the full set's slot up front instead.
        let s = enumerate_subsets(5, Some(2), 4);
        assert_eq!(s.len(), 4, "budget must hold exactly");
        assert_eq!(*s.last().unwrap(), vec![0, 1, 2, 3, 4], "full set present");
        // The enumerated prefix is exactly the first budget-1 subsets of the
        // untruncated enumeration — nothing skipped, nothing overwritten.
        let untruncated = enumerate_subsets(5, Some(2), u64::MAX);
        assert_eq!(&s[..3], &untruncated[..3]);
        let set: std::collections::HashSet<Vec<usize>> = s.iter().cloned().collect();
        assert_eq!(set.len(), 4, "no duplicates");
    }

    #[test]
    fn truncation_without_cap_still_includes_full_set() {
        // With no cap but a state budget, small-first enumeration never
        // reaches the full set on its own; it must still be included.
        let s = enumerate_subsets(10, None, 20);
        assert_eq!(s.len(), 20);
        assert_eq!(*s.last().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn large_first_truncation_keeps_budget_and_full_set() {
        let s = enumerate_subsets_ordered(10, None, 20, true);
        assert_eq!(s.len(), 20);
        // Large-first emits the full set first; no slot is reserved.
        assert_eq!(s[0].len(), 10);
    }

    #[test]
    fn budget_of_one_with_cap_yields_only_the_full_set() {
        let s = enumerate_subsets(5, Some(2), 1);
        assert_eq!(s, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn state_key_equates_overwritten_and_coalesced_subsets() {
        let writes = vec![
            PendingWrite { off: 0, data: vec![7u8; 8], nt: true },
            PendingWrite { off: 0, data: vec![9u8; 8], nt: true },   // covers #0
            PendingWrite { off: 8, data: vec![3u8; 8], nt: true },
            PendingWrite { off: 0, data: {
                let mut d = vec![9u8; 8];
                d.extend_from_slice(&[3u8; 8]);
                d
            }, nt: true },                                            // == #1 then #2
        ];
        // Write 1 fully covers write 0: {1} and {0,1} leave identical bytes.
        assert_eq!(state_key(&writes, &[1]), state_key(&writes, &[0, 1]));
        // Adjacent writes {1,2} equal the single spanning write {3}.
        assert_eq!(state_key(&writes, &[1, 2]), state_key(&writes, &[3]));
        // Genuinely different images differ.
        assert_ne!(state_key(&writes, &[0]), state_key(&writes, &[1]));
        assert_ne!(state_key(&writes, &[1]), state_key(&writes, &[1, 2]));
        // Index order never matters (program order is recovered internally).
        assert_eq!(state_key(&writes, &[1, 0]), state_key(&writes, &[0, 1]));
    }

    #[test]
    fn state_key_distinguishes_offset_and_gap_layouts() {
        let writes = vec![
            PendingWrite { off: 0, data: vec![5u8; 4], nt: true },
            PendingWrite { off: 4, data: vec![5u8; 4], nt: true },
            PendingWrite { off: 8, data: vec![5u8; 4], nt: true },
        ];
        // Same bytes at a different offset is a different state.
        assert_ne!(state_key(&writes, &[0]), state_key(&writes, &[1]));
        // Contiguous [0,8) differs from gapped {[0,4), [8,12)}.
        assert_ne!(state_key(&writes, &[0, 1]), state_key(&writes, &[0, 2]));
        // The empty subset is the base state and keys consistently.
        assert_eq!(state_key(&writes, &[]), state_key(&writes, &[]));
        assert_ne!(state_key(&writes, &[]), state_key(&writes, &[0]));
    }

    #[test]
    fn behavior_sig_is_cumulative_across_fence_absorption() {
        // The op writes A then B with a fence between them. At the fence,
        // pending {A, B}'s full-set state must sign identically to the base
        // state of the next point, where A and B are already absorbed.
        let a = PendingWrite { off: 64, data: vec![7u8; 8], nt: false };
        let b = PendingWrite { off: 128, data: vec![9u8; 8], nt: false };
        let both = vec![a.clone(), b.clone()];
        let full_at_fence = behavior_sig(&both, &[0, 1], &[], false);
        let base_after = behavior_sig(&[], &[], &both, false);
        assert_eq!(full_at_fence, base_after);
        // Partial absorption composes the same way.
        let half = behavior_sig(std::slice::from_ref(&b), &[0], std::slice::from_ref(&a), false);
        assert_eq!(half, full_at_fence);
        // And subsets remain distinct from the full set.
        assert_ne!(behavior_sig(&both, &[0], &[], false), full_at_fence);
    }

    #[test]
    fn behavior_sig_drops_data_writes_under_torn_relaxation() {
        let meta = PendingWrite { off: 0, data: 3u64.to_le_bytes().to_vec(), nt: false };
        let data_a = PendingWrite { off: 4096, data: vec![1u8; 4096], nt: true };
        let data_b = PendingWrite { off: 4096, data: vec![2u8; 4096], nt: true };
        let md_a = vec![meta.clone(), data_a.clone()];
        // With the torn-data drop, data membership is invisible: the
        // metadata-only subset and the metadata+data subset are one class...
        assert_eq!(behavior_sig(&md_a, &[0], &[], true), behavior_sig(&md_a, &[0, 1], &[], true));
        // ...as is the same shape with different data content...
        let md_b = vec![meta.clone(), data_b.clone()];
        assert_eq!(behavior_sig(&md_a, &[0, 1], &[], true), behavior_sig(&md_b, &[0, 1], &[], true));
        // ...but the exact image key still tells the states apart.
        assert_ne!(state_key(&md_a, &[0, 1]), state_key(&md_b, &[0, 1]));
        // A data-only subset signs like the absorbed-only base.
        assert_eq!(behavior_sig(&md_a, &[1], &[], true), behavior_sig(&[], &[], &[], true));
    }

    #[test]
    fn behavior_sig_keeps_data_content_exact_without_the_relaxation() {
        // Outside a proven-tolerant point (fortis checksums, foreign pending
        // writes, overlapping data writes) data bytes sign exactly.
        let data_a = PendingWrite { off: 4096, data: vec![1u8; 4096], nt: true };
        let data_b = PendingWrite { off: 4096, data: vec![2u8; 4096], nt: true };
        assert_ne!(
            behavior_sig(std::slice::from_ref(&data_a), &[0], &[], false),
            behavior_sig(std::slice::from_ref(&data_b), &[0], &[], false)
        );
    }

    #[test]
    fn behavior_sig_keeps_metadata_content_exact() {
        // An 8-byte store with a different value (journal tail: n vs 0) is a
        // behaviorally different state and must never share a class.
        let tail_set = PendingWrite { off: 0, data: 3u64.to_le_bytes().to_vec(), nt: false };
        let tail_clear = PendingWrite { off: 0, data: 0u64.to_le_bytes().to_vec(), nt: false };
        assert_ne!(
            behavior_sig(std::slice::from_ref(&tail_set), &[0], &[], true),
            behavior_sig(std::slice::from_ref(&tail_clear), &[0], &[], true)
        );
        // Small nt writes count as metadata too, even under the data drop.
        let nt_small_a = PendingWrite { off: 64, data: vec![5u8; 32], nt: true };
        let nt_small_b = PendingWrite { off: 64, data: vec![6u8; 32], nt: true };
        assert_ne!(
            behavior_sig(std::slice::from_ref(&nt_small_a), &[0], &[], true),
            behavior_sig(std::slice::from_ref(&nt_small_b), &[0], &[], true)
        );
    }

    #[test]
    fn data_shadowing_unsafe_tolerates_zero_fill_but_not_rewrites() {
        let d = |off: u64, byte: u8| PendingWrite { off, data: vec![byte; 4096], nt: true };
        let meta = PendingWrite { off: 0, data: vec![1u8; 8], nt: false };
        // Disjoint data writes (and any number of metadata writes) are fine.
        assert!(!data_shadowing_unsafe(&[d(4096, 1), meta.clone(), d(8192, 2)]));
        // Zero-fill of a fresh block later covered by content is tolerated
        // (a subset applying only the fill leaves tolerated zero bytes), as
        // is rewriting the same bytes.
        assert!(!data_shadowing_unsafe(&[d(4096, 0), d(4096, 7)]));
        assert!(!data_shadowing_unsafe(&[d(4096, 7), d(4096, 7)]));
        // A nonzero intermediate value a later data write replaces is not:
        // a subset with only the earlier write would surface it.
        assert!(data_shadowing_unsafe(&[d(4096, 5), d(4096, 7)]));
        assert!(data_shadowing_unsafe(&[d(4096, 5), d(6144, 7)]));
        // Metadata overlapping data is not a data/data shadow.
        let small = PendingWrite { off: 4100, data: vec![2u8; 8], nt: false };
        assert!(!data_shadowing_unsafe(&[d(4096, 3), small]));
    }

    #[test]
    fn coalesce_merges_contiguous_nt_runs() {
        let w = |off: u64, len: usize, nt: bool| PendingWrite {
            off,
            data: vec![1u8; len],
            nt,
        };
        let v = vec![w(0, 64, true), w(64, 64, true), w(128, 64, true), w(512, 8, false)];
        let c = coalesce(&v);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].data.len(), 192);
        assert!(!c[1].nt);
    }

    #[test]
    fn coalesce_keeps_non_contiguous_and_flush_separate() {
        let w = |off: u64, len: usize, nt: bool| PendingWrite {
            off,
            data: vec![1u8; len],
            nt,
        };
        let v = vec![w(0, 64, true), w(128, 64, true), w(192, 64, false), w(256, 64, false)];
        assert_eq!(coalesce(&v).len(), 4);
    }

    proptest::proptest! {
        /// Large-first enumeration is always a permutation of small-first
        /// (same subsets, same cap semantics, full set always present when
        /// capped) for any n/cap combination.
        #[test]
        fn ordered_enumeration_is_a_permutation(
            n in 1usize..10,
            cap in proptest::option::of(1usize..10),
        ) {
            let a = enumerate_subsets_ordered(n, cap, u64::MAX, false);
            let b = enumerate_subsets_ordered(n, cap, u64::MAX, true);
            let sa: std::collections::HashSet<Vec<usize>> = a.iter().cloned().collect();
            let sb: std::collections::HashSet<Vec<usize>> = b.iter().cloned().collect();
            proptest::prop_assert_eq!(a.len(), b.len());
            proptest::prop_assert_eq!(&sa, &sb);
            proptest::prop_assert!(sa.contains(&(0..n).collect::<Vec<_>>()));
        }
    }

    fn materialize(base: &[u8], writes: &[PendingWrite], subset: &[usize]) -> Vec<u8> {
        let mut cow = pmem::CowDevice::new(base);
        apply_subset(&mut cow, writes, subset);
        use pmem::PmBackend;
        cow.read_vec(0, base.len() as u64)
    }

    #[test]
    fn walker_tracks_device_and_key_across_transitions() {
        let mut base = vec![0u8; 8192];
        base[100] = 42;
        let writes = vec![
            PendingWrite { off: 0, data: vec![1u8; 16], nt: true },
            PendingWrite { off: 8, data: vec![2u8; 16], nt: true }, // overlaps #0
            PendingWrite { off: 4000, data: vec![3u8; 200], nt: true }, // crosses page
            PendingWrite { off: 100, data: vec![0u8; 4], nt: false }, // zeroes base bytes
        ];
        let subsets = enumerate_subsets(writes.len(), None, u64::MAX);
        let mut walker = SubsetWalker::new(&base, pmem::image_key(&base));
        use pmem::PmBackend;
        for s in &subsets {
            walker.goto(&writes, s);
            let want = materialize(&base, &writes, s);
            let got = walker.device().read_vec(0, base.len() as u64);
            assert_eq!(got, want, "device mismatch at subset {s:?}");
            assert_eq!(walker.key(), pmem::image_key(&want), "key mismatch at {s:?}");
        }
        // Jump back to an early subset: pops must restore exactly.
        walker.goto(&writes, &[1]);
        assert_eq!(walker.key(), pmem::image_key(&materialize(&base, &writes, &[1])));
    }

    #[test]
    fn walker_checker_mutations_roll_back_without_touching_key() {
        let base = vec![0u8; 4096];
        let writes = vec![PendingWrite { off: 0, data: vec![7u8; 8], nt: true }];
        let mut walker = SubsetWalker::new(&base, 0);
        walker.goto(&writes, &[0]);
        let key = walker.key();
        let m = walker.mark();
        use pmem::PmBackend;
        walker.device().store(2000, &[9u8; 64]); // "recovery" mutation
        walker.device().store(4, &[5u8; 8]); // overlapping the replayed write
        walker.undo_to(m);
        assert_eq!(walker.key(), key);
        let img = walker.device().read_vec(0, 4096);
        assert_eq!(img, materialize(&base, &writes, &[0]));
    }

    proptest::proptest! {
        /// Delta replay + undo is byte-identical to a from-scratch
        /// `CowDevice::new` + `apply_subset` for random write sets and
        /// random subset visit sequences, and the incrementally maintained
        /// image key always equals the recomputed one.
        #[test]
        fn delta_replay_matches_from_scratch(
            seed in 0u64..1000,
            n_writes in 1usize..6,
            n_visits in 1usize..12,
        ) {
            // Deterministic pseudo-random writes and visit order from the seed.
            let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let base: Vec<u8> = (0..4096u64).map(|i| (i % 251) as u8).collect();
            let writes: Vec<PendingWrite> = (0..n_writes)
                .map(|_| {
                    let off = next() % 4000;
                    let len = 1 + (next() % 96) as usize;
                    let data: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
                    PendingWrite { off, data, nt: next() % 2 == 0 }
                })
                .collect();
            let mut walker = SubsetWalker::new(&base, pmem::image_key(&base));
            use pmem::PmBackend;
            for _ in 0..n_visits {
                // Random subset, sorted ascending.
                let mask = next() as usize % (1 << n_writes);
                let subset: Vec<usize> = (0..n_writes).filter(|i| mask & (1 << i) != 0).collect();
                walker.goto(&writes, &subset);
                // Random checker-style mutation, rolled back via a mark.
                let m = walker.mark();
                walker.device().store(next() % 4000, &[(next() % 256) as u8; 8]);
                walker.undo_to(m);
                let want = materialize(&base, &writes, &subset);
                let got = walker.device().read_vec(0, base.len() as u64);
                proptest::prop_assert_eq!(&got, &want);
                proptest::prop_assert_eq!(walker.key(), pmem::image_key(&want));
            }
        }
    }

    #[test]
    fn apply_subset_respects_program_order() {
        let base = vec![0u8; 4096];
        let writes = vec![
            PendingWrite { off: 0, data: vec![1u8; 8], nt: true },
            PendingWrite { off: 0, data: vec![2u8; 8], nt: true },
        ];
        let mut cow = pmem::CowDevice::new(&base);
        // Pass indices out of order: program order must still hold.
        apply_subset(&mut cow, &writes, &[1, 0]);
        let mut buf = [0u8; 8];
        use pmem::PmBackend;
        cow.read(0, &mut buf);
        assert_eq!(buf, [2u8; 8]);
    }
}
