//! Offline shim for the `proptest` crate surface used by this workspace.
//!
//! Implements the strategy combinators, the `proptest!` test macro, and the
//! `prop_assert*` macros over a deterministic per-test RNG. Differences from
//! upstream proptest, acceptable for this repo's suites:
//!
//! * **No shrinking** — a failing case reports its inputs (and the case
//!   index) instead of a minimized counterexample.
//! * **Fixed derivation of case seeds** — every test function derives its
//!   case RNGs from a hash of its module path and name, so failures are
//!   reproducible across runs and machines without a persistence file.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// `prop::` namespace alias as re-exported by the upstream prelude.
pub mod prop {
    pub use crate::arbitrary;
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    //! The common imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted union of strategies: `prop_oneof![s1, s2]` or
/// `prop_oneof![3 => s1, 1 => s2]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), a, b),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "both sides equal {:?}", a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (both sides equal {:?})", format!($($fmt)+), a),
            ));
        }
    }};
}

/// Declares property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        concat!("  ", stringify!($arg), " = {:?}\n"), &$arg));)+
                    s
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        __case + 1, __cfg.cases, e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            x in 3u64..17,
            v in prop::collection::vec(any::<u8>(), 2..6),
            exact in prop::collection::vec(1u8..=3, 4),
            opt in prop::option::of(0usize..5),
            pick in prop::sample::select(vec!["a", "b"]),
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(exact.len(), 4);
            prop_assert!(exact.iter().all(|b| (1..=3).contains(b)));
            if let Some(o) = opt { prop_assert!(o < 5); }
            prop_assert!(pick == "a" || pick == "b");
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn oneof_weights_and_maps(
            s in prop_oneof![3 => Just(1u8), 1 => Just(2u8)],
            m in (0u8..4).prop_map(|b| b * 10),
        ) {
            prop_assert!(s == 1 || s == 2);
            prop_assert!(m % 10 == 0 && m < 40);
        }

        #[test]
        fn question_mark_propagates(x in 0u32..10) {
            let check = |v: u32| -> Result<(), TestCaseError> {
                prop_assert!(v < 10);
                Ok(())
            };
            check(x)?;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut rng = TestRng::for_case("fixed::name", 3);
            let s = crate::collection::vec(0u8..=255, 8);
            Strategy::generate(&s, &mut rng)
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_surface_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(false, "forced");
            }
        }
        always_fails();
    }
}
