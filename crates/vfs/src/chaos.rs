//! Chaos wrapper: any [`FsKind`] with injected device-level faults.
//!
//! [`ChaosKind`] interposes a [`pmem::FaultDevice`] between a wrapped file
//! system and whatever device the harness hands it, so a [`FaultPlan`] —
//! panic at the n-th mount op, spin forever, tear a store during recording —
//! fires inside otherwise-correct file-system code. It is the self-test
//! fixture for the harness's fault isolation (`core::sandbox`): the sweep
//! must survive the injected crash, report it exactly once, and stay
//! bit-identical across thread counts and fast-path configurations.
//!
//! Faults are injected per *lineage*: each mount gets its own op counter
//! starting at zero, so whether a plan fires on a given crash state is a
//! pure function of that state's content — independent of check order,
//! worker threads, or prefix-cache splicing.

use pmem::{FaultDevice, FaultPlan, FaultRole, PmBackend};

use crate::{
    bugs::FsName,
    error::FsResult,
    fs::{FsKind, FsOptions, Guarantees},
};

/// The file-system instance type a [`ChaosKind`] produces for a device `D`:
/// the wrapped kind's instance running on a fault-injecting device.
pub type ChaosFs<K, D> = <K as FsKind>::Fs<FaultDevice<D>>;

/// An [`FsKind`] that runs the wrapped kind on a [`FaultDevice`] carrying a
/// fixed [`FaultPlan`]. `mkfs` (the recording lineage) gets
/// [`FaultRole::Record`]; `mount` (the recovery lineage under test) gets
/// [`FaultRole::Mount`].
#[derive(Clone)]
pub struct ChaosKind<K> {
    inner: K,
    plan: FaultPlan,
}

impl<K: FsKind> ChaosKind<K> {
    /// Wraps `inner` so every device it touches carries `plan`.
    pub fn new(inner: K, plan: FaultPlan) -> Self {
        ChaosKind { inner, plan }
    }

    /// The wrapped kind.
    pub fn inner(&self) -> &K {
        &self.inner
    }

    /// The injected fault plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }
}

impl<K: FsKind> FsKind for ChaosKind<K> {
    type Fs<D: PmBackend> = K::Fs<FaultDevice<D>>;

    fn name(&self) -> FsName {
        self.inner.name()
    }

    fn options(&self) -> &FsOptions {
        self.inner.options()
    }

    fn with_options(&self, opts: FsOptions) -> Self {
        ChaosKind { inner: self.inner.with_options(opts), plan: self.plan }
    }

    fn guarantees(&self) -> Guarantees {
        self.inner.guarantees()
    }

    fn mkfs<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        // The oracle walks the mkfs'd (Record-lineage) file system; its
        // probes must never fire walk faults.
        pmem::fault::arm_walk_faults(None, None);
        self.inner.mkfs(FaultDevice::new(dev, self.plan, FaultRole::Record))
    }

    fn mount<D: PmBackend>(&self, dev: D) -> FsResult<Self::Fs<D>> {
        // Mount and the post-mount walk run back-to-back on this thread;
        // arming here resets the probe counter per walk lineage.
        pmem::fault::arm_walk_faults(self.plan.walk_panic_at, self.plan.walk_hang_at);
        self.inner.mount(FaultDevice::new(dev, self.plan, FaultRole::Mount))
    }

    fn fork_fs<D: PmBackend + Clone>(&self, fs: &Self::Fs<D>) -> Option<Self::Fs<D>> {
        // FaultDevice clones carry their op counters, so a forked lineage
        // resumes exactly where re-execution would be.
        self.inner.fork_fs(fs)
    }
}
