//! Porting Chipmunk to the eADR persistence model (§3.6).
//!
//! ```sh
//! cargo run --release --example eadr_port
//! ```
//!
//! Under **ADR** (the epoch model the paper targets), stores sit in the
//! volatile cache until a write-back (`clwb`) and fence make them durable —
//! so a forgotten flush or fence is a crash-consistency bug. Under **eADR**
//! the caches themselves are persistent: every store is durable the moment
//! it lands, and the forgotten operations are unnecessary.
//!
//! The paper argues (§3.6) that Chipmunk ports to such models by changing
//! what the logger records and how the replayer builds crash states. This
//! example runs that port: the same two NOVA bugs are hunted under both
//! models via `TestConfig { eadr: true }`.
//!
//! * Bug 2 — a **PM-programming bug** (the new inode is never flushed):
//!   found under ADR, unobservable under eADR.
//! * Bug 4 — a **logic bug** (rename invalidates the old dentry in place,
//!   no journaling): found under *both*; Observation 1 transcends the
//!   persistence model.

use chipmunk::{test_workload, TestConfig};
use novafs::NovaKind;
use vfs::{fs::FsOptions, BugId, BugSet, Op, Workload};

fn hunt(kind: &NovaKind, wl: &Workload, cfg: &TestConfig) -> Option<String> {
    let out = test_workload(kind, wl, cfg);
    out.reports.first().map(|r| r.violation.detail().to_string())
}

fn main() {
    let adr = TestConfig { stop_on_first: true, ..TestConfig::default() };
    let eadr = TestConfig { stop_on_first: true, eadr: true, ..TestConfig::default() };

    println!("─── Bug 2: PM-programming bug (missing inode flush) ───────────");
    let pm_kind = NovaKind {
        opts: FsOptions::with_bugs(BugSet::only(&[BugId::B02])),
        fortis: false,
    };
    let wl = Workload::new("mkdir", vec![Op::Mkdir { path: "/d".into() }]);
    match hunt(&pm_kind, &wl, &adr) {
        Some(v) => println!("  ADR : FOUND — {v}"),
        None => println!("  ADR : clean (unexpected!)"),
    }
    match hunt(&pm_kind, &wl, &eadr) {
        Some(v) => println!("  eADR: FOUND — {v} (unexpected!)"),
        None => println!("  eADR: clean — persistent caches made the missing flush irrelevant"),
    }

    println!();
    println!("─── Bug 4: logic bug (in-place rename, no journal) ────────────");
    let logic_kind = NovaKind {
        opts: FsOptions::with_bugs(BugSet::only(&[BugId::B04])),
        fortis: false,
    };
    let wl = Workload::new(
        "rename",
        vec![
            Op::Creat { path: "/a".into() },
            Op::Rename { old: "/a".into(), new: "/b".into() },
        ],
    );
    match hunt(&logic_kind, &wl, &adr) {
        Some(v) => println!("  ADR : FOUND — {v}"),
        None => println!("  ADR : clean (unexpected!)"),
    }
    match hunt(&logic_kind, &wl, &eadr) {
        Some(v) => println!("  eADR: FOUND — {v}"),
        None => println!("  eADR: clean (unexpected!)"),
    }

    println!();
    println!("Logic bugs transcend the persistence model (Observation 1);");
    println!("PM-programming bugs are an ADR phenomenon. Full-corpus version:");
    println!("  cargo run --release -p bench --bin eadr");
}
