#![warn(missing_docs)]

//! Workload generation: the ACE systematic generator and the
//! Syzkaller-style coverage-guided fuzzer (§3.4).
//!
//! The two frontends embody the paper's two hypotheses about finding
//! crash-consistency bugs:
//!
//! * [`ace`] — CrashMonkey's *small-scope hypothesis*: exhaustively
//!   enumerate every workload of bounded length over a small file set.
//!   19 of the paper's 23 bugs fall to these workloads (Observation 6).
//! * [`fuzz`] — a gray-box generational fuzzer in the style of the paper's
//!   modified Syzkaller: semantically plausible random programs, seeds kept
//!   when they produce new coverage, and access to patterns ACE omits —
//!   multiple descriptors per file, non-8-byte-aligned writes, and
//!   non-zero CPUs — exactly the triggers of the four ACE-missed bugs
//!   (19, 20, 22, 23).

pub mod ace;
pub mod fuzz;

pub use ace::{seq1, seq2, seq3_metadata, AceMode};
pub use fuzz::{FuzzConfig, Fuzzer};
