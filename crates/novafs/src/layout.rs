//! On-device layout: superblock, inode tables, log pages, and the log-entry
//! codecs.

use vfs::{FsError, FsResult};

/// Block size in bytes.
pub const BLOCK: u64 = 4096;

/// Superblock magic ("NOVALOGF").
pub const MAGIC: u64 = u64::from_le_bytes(*b"NOVALOGF");

/// Inode size in bytes.
pub const INODE_SIZE: u64 = 128;

/// Log entry size in bytes.
pub const ENTRY_SIZE: u64 = 48;

/// Byte offset of the first entry within a log page (after the next-page
/// pointer).
pub const PAGE_HDR: u64 = 8;

/// Entries per log page.
pub const ENTRIES_PER_PAGE: u64 = (BLOCK - PAGE_HDR) / ENTRY_SIZE;

/// Maximum name length in a directory log entry.
pub const NAME_MAX: usize = 32;

/// The root directory's inode number.
pub const ROOT_INO: u64 = 1;

/// Superblock field offsets.
pub mod sboff {
    /// Magic (u64).
    pub const MAGIC: u64 = 0;
    /// Total blocks (u64).
    pub const TOTAL_BLOCKS: u64 = 8;
    /// Inode count (u64).
    pub const INODE_COUNT: u64 = 16;
    /// Journal block number (u64).
    pub const JOURNAL: u64 = 24;
    /// Primary inode-table start block (u64).
    pub const ITABLE: u64 = 32;
    /// Replica inode-table start block (u64, Fortis).
    pub const ITABLE2: u64 = 40;
    /// First allocatable block (u64).
    pub const DATA_START: u64 = 48;
    /// Generation counter bumped at syscall entry (u64).
    pub const GEN_A: u64 = 56;
    /// Generation counter bumped at syscall exit (u64).
    pub const GEN_B: u64 = 64;
    /// Fortis flag (u64: 0/1), set at mkfs.
    pub const FORTIS: u64 = 72;
}

/// The Fortis deallocation record, stored in the spare tail of the journal
/// block: `[ino u64][count u64][block numbers ...]`. `ino == 0` means no
/// record. Written by `truncate` before freeing blocks, cleared afterwards;
/// replayed at mount (bug 11 lives in the replay).
pub mod dealloc {
    /// Byte offset of the record within the journal block.
    pub const OFF: u64 = 2816;
    /// Maximum number of recorded block numbers.
    pub const CAP: usize = 158;
}

/// Inode field offsets.
pub mod ioff {
    /// File type (u64): see [`super::itype`].
    pub const FTYPE: u64 = 0;
    /// Link count (u64; meaningful for regular files — directory link
    /// counts are derived from the rebuild scan).
    pub const NLINK: u64 = 8;
    /// First log page block number (u64; 0 = none).
    pub const LOG_HEAD: u64 = 16;
    /// Log tail: absolute device byte offset of the next free entry slot.
    pub const LOG_TAIL: u64 = 24;
    /// Fortis: checksum over the first 32 bytes of the inode.
    pub const CSUM: u64 = 32;
}

/// Inode type tags.
pub mod itype {
    /// Free slot.
    pub const FREE: u64 = 0;
    /// Regular file.
    pub const FILE: u64 = 1;
    /// Directory.
    pub const DIR: u64 = 2;
}

/// Computed device geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total blocks.
    pub total_blocks: u64,
    /// Number of inodes.
    pub inode_count: u64,
    /// Journal block.
    pub journal: u64,
    /// Primary inode table start block.
    pub itable: u64,
    /// Replica inode table start block.
    pub itable2: u64,
    /// First allocatable block.
    pub data_start: u64,
}

impl Geometry {
    /// Computes the layout for a device of `size` bytes.
    pub fn for_device(size: u64) -> FsResult<Geometry> {
        let total_blocks = size / BLOCK;
        if total_blocks < 32 {
            return Err(FsError::NoSpace);
        }
        let journal = 1;
        let itable = 2;
        let inode_count = (total_blocks / 4).clamp(64, 2048);
        let itable_blocks = (inode_count * INODE_SIZE).div_ceil(BLOCK);
        let itable2 = itable + itable_blocks;
        let data_start = itable2 + itable_blocks;
        if data_start + 8 > total_blocks {
            return Err(FsError::NoSpace);
        }
        Ok(Geometry { total_blocks, inode_count, journal, itable, itable2, data_start })
    }

    /// Device byte offset of inode `ino` in the primary table.
    pub fn inode_off(&self, ino: u64) -> u64 {
        debug_assert!(ino >= 1 && ino <= self.inode_count);
        self.itable * BLOCK + (ino - 1) * INODE_SIZE
    }

    /// Device byte offset of inode `ino` in the replica table.
    pub fn replica_off(&self, ino: u64) -> u64 {
        self.itable2 * BLOCK + (ino - 1) * INODE_SIZE
    }

    /// End of the inode-table region (exclusive) — used to validate journal
    /// restore addresses.
    pub fn itable_end(&self) -> u64 {
        self.itable2 * BLOCK + self.inode_count * INODE_SIZE
    }
}

/// A decoded log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Adds (`valid = true`) a name in this directory's namespace.
    Dentry {
        /// Liveness flag — in-place invalidation clears it (bug 4's
        /// vehicle).
        valid: bool,
        /// Generation of the syscall that appended the entry.
        gen: u64,
        /// Child inode number.
        ino: u64,
        /// Entry name.
        name: String,
    },
    /// Maps `nblocks` blocks starting at `block` into the file at
    /// byte offset `off` (copy-on-write); `block == 0` unmaps (hole).
    FileWrite {
        /// Generation.
        gen: u64,
        /// File byte offset (block aligned).
        off: u64,
        /// Number of blocks.
        nblocks: u64,
        /// First device block (contiguous run), or 0 for a hole.
        block: u64,
        /// File size after this write.
        size_after: u64,
        /// Fortis: checksum of the run's data (fnv over all blocks).
        csum: u32,
    },
    /// Sets the file size (truncate/fallocate).
    SetAttr {
        /// Generation.
        gen: u64,
        /// New size.
        size: u64,
    },
}

mod tag {
    pub const DENTRY: u8 = 1;
    pub const FILE_WRITE: u8 = 2;
    pub const SET_ATTR: u8 = 3;
}

impl LogRecord {
    /// Encodes into the fixed 48-byte on-log form.
    pub fn encode(&self) -> [u8; ENTRY_SIZE as usize] {
        let mut b = [0u8; ENTRY_SIZE as usize];
        match self {
            LogRecord::Dentry { valid, gen, ino, name } => {
                b[0] = tag::DENTRY;
                b[1] = u8::from(*valid);
                b[2] = name.len() as u8;
                b[4..8].copy_from_slice(&(*ino as u32).to_le_bytes());
                b[8..16].copy_from_slice(&gen.to_le_bytes());
                debug_assert!(name.len() <= NAME_MAX);
                b[16..16 + name.len()].copy_from_slice(name.as_bytes());
            }
            LogRecord::FileWrite { gen, off, nblocks, block, size_after, csum } => {
                b[0] = tag::FILE_WRITE;
                b[4..8].copy_from_slice(&csum.to_le_bytes());
                b[8..16].copy_from_slice(&gen.to_le_bytes());
                b[16..24].copy_from_slice(&off.to_le_bytes());
                b[24..32].copy_from_slice(&nblocks.to_le_bytes());
                b[32..40].copy_from_slice(&block.to_le_bytes());
                b[40..48].copy_from_slice(&size_after.to_le_bytes());
            }
            LogRecord::SetAttr { gen, size } => {
                b[0] = tag::SET_ATTR;
                b[8..16].copy_from_slice(&gen.to_le_bytes());
                b[16..24].copy_from_slice(&size.to_le_bytes());
            }
        }
        b
    }

    /// Decodes an entry; `None` for an unrecognized tag (torn/garbage).
    pub fn decode(b: &[u8]) -> Option<LogRecord> {
        let gen = u64::from_le_bytes(b[8..16].try_into().ok()?);
        match b[0] {
            tag::DENTRY => {
                let nlen = (b[2] as usize).min(NAME_MAX);
                Some(LogRecord::Dentry {
                    valid: b[1] != 0,
                    gen,
                    ino: u32::from_le_bytes(b[4..8].try_into().ok()?) as u64,
                    name: String::from_utf8_lossy(&b[16..16 + nlen]).into_owned(),
                })
            }
            tag::FILE_WRITE => Some(LogRecord::FileWrite {
                gen,
                csum: u32::from_le_bytes(b[4..8].try_into().ok()?),
                off: u64::from_le_bytes(b[16..24].try_into().ok()?),
                nblocks: u64::from_le_bytes(b[24..32].try_into().ok()?),
                block: u64::from_le_bytes(b[32..40].try_into().ok()?),
                size_after: u64::from_le_bytes(b[40..48].try_into().ok()?),
            }),
            tag::SET_ATTR => Some(LogRecord::SetAttr {
                gen,
                size: u64::from_le_bytes(b[16..24].try_into().ok()?),
            }),
            _ => None,
        }
    }

    /// The generation stamped on the entry.
    pub fn gen(&self) -> u64 {
        match self {
            LogRecord::Dentry { gen, .. }
            | LogRecord::FileWrite { gen, .. }
            | LogRecord::SetAttr { gen, .. } => *gen,
        }
    }
}

/// Checksum for Fortis inode integrity (FNV over the covered bytes).
pub fn inode_csum(bytes: &[u8]) -> u64 {
    vfs::cov::fnv1a(bytes)
}

/// Checksum for Fortis file-data integrity.
pub fn data_csum(bytes: &[u8]) -> u32 {
    vfs::cov::fnv1a(bytes) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sane() {
        let g = Geometry::for_device(8 << 20).unwrap();
        assert!(g.itable2 > g.itable);
        assert!(g.data_start > g.itable2);
        assert!(g.data_start < g.total_blocks);
        assert_eq!(g.inode_off(2) - g.inode_off(1), INODE_SIZE);
        assert!(g.itable_end() <= g.data_start * BLOCK);
        assert!(Geometry::for_device(1024).is_err());
    }

    #[test]
    fn dentry_roundtrip() {
        let e = LogRecord::Dentry { valid: true, gen: 7, ino: 42, name: "file.txt".into() };
        assert_eq!(LogRecord::decode(&e.encode()), Some(e));
        let t = LogRecord::Dentry { valid: false, gen: 9, ino: 3, name: "x".into() };
        assert_eq!(LogRecord::decode(&t.encode()), Some(t));
    }

    #[test]
    fn filewrite_roundtrip() {
        let e = LogRecord::FileWrite {
            gen: 3,
            off: 8192,
            nblocks: 4,
            block: 100,
            size_after: 20_000,
            csum: 0xdead,
        };
        assert_eq!(LogRecord::decode(&e.encode()), Some(e));
    }

    #[test]
    fn setattr_roundtrip_and_garbage() {
        let e = LogRecord::SetAttr { gen: 1, size: 4096 };
        assert_eq!(LogRecord::decode(&e.encode()), Some(e));
        assert_eq!(LogRecord::decode(&[0xffu8; 48]), None);
        assert_eq!(LogRecord::decode(&[0u8; 48]), None);
    }

    #[test]
    fn entries_fit_pages() {
        assert_eq!(ENTRIES_PER_PAGE, 85);
        const _FITS: () = assert!(PAGE_HDR + ENTRIES_PER_PAGE * ENTRY_SIZE <= BLOCK);
    }
}
