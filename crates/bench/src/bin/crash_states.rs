//! Regenerates the §4.3 crash-state-count comparison: "The number of crash
//! states to check on each workload varies as much as 3× between file
//! systems, with PMFS generally checking the most and WineFS checking the
//! fewest."
//!
//! ```sh
//! cargo run --release -p bench --bin crash_states
//! ```

use bench::{mode_for, run_suite, STRONG_SYSTEMS};
use chipmunk::TestConfig;
use vfs::{BugSet, FsName};
use workloads::ace::seq1;

fn main() {
    let cfg = TestConfig::default();
    println!("crash states explored per file system over the ACE seq-1 suite (fixed bugs)\n");
    println!(
        "{:<12} {:>10} {:>13} {:>13} {:>16}",
        "FS", "workloads", "crash points", "crash states", "states/workload"
    );
    println!("{}", "-".repeat(68));
    let mut per_fs: Vec<(FsName, f64)> = Vec::new();
    for fs in STRONG_SYSTEMS.into_iter().chain([FsName::Ext4Dax, FsName::XfsDax]) {
        let stats = run_suite(fs, BugSet::fixed(), seq1(mode_for(fs)), &cfg);
        let per = stats.crash_states as f64 / stats.workloads as f64;
        println!(
            "{:<12} {:>10} {:>13} {:>13} {:>16.1}",
            fs.to_string(),
            stats.workloads,
            stats.crash_points,
            stats.crash_states,
            per
        );
        if !matches!(fs, FsName::Ext4Dax | FsName::XfsDax) {
            per_fs.push((fs, per));
        }
    }
    println!("{}", "-".repeat(68));
    let max = per_fs.iter().cloned().fold((FsName::Nova, 0.0f64), |a, b| {
        if b.1 > a.1 {
            b
        } else {
            a
        }
    });
    let min = per_fs.iter().cloned().fold((FsName::Nova, f64::MAX), |a, b| {
        if b.1 < a.1 {
            b
        } else {
            a
        }
    });
    println!(
        "most: {} ({:.1}/workload); fewest: {} ({:.1}/workload); ratio {:.2}x",
        max.0,
        max.1,
        min.0,
        min.1,
        max.1 / min.1
    );
    println!("paper: up to 3x variation; PMFS most, WineFS fewest");
}
