//! Property tests for the checker's data-write relaxation
//! (`diff_relaxed_write` / `diff_atomic_write`): soundness (legal torn
//! states are always accepted) and completeness (states containing bytes
//! no crash could produce are always rejected).

use chipmunk::oracle::{diff_atomic_write, diff_relaxed_write, NodeSnap, SnapEntry, Tree};
use proptest::prelude::*;

fn file(ino: u64, nlink: u64, data: &[u8]) -> SnapEntry {
    SnapEntry::new(NodeSnap::File { ino, nlink, size: data.len() as u64, data: data.to_vec() })
}

/// Builds the minimal oracle tree: root plus one file at `/f` (and, when
/// `linked`, a hard link at `/g`).
fn tree(data: &[u8], linked: bool) -> Tree {
    let mut t = Tree::new();
    let mut entries = vec!["f".to_string()];
    let nlink = if linked { 2 } else { 1 };
    if linked {
        entries.push("g".into());
        t.insert("/g".into(), file(7, nlink, data));
    }
    t.insert("/".into(), SnapEntry::new(NodeSnap::Dir { ino: 1, nlink: 2, entries }));
    t.insert("/f".into(), file(7, nlink, data));
    t
}

/// A torn mix of `old` and `new` (with zeros for unwritten blocks),
/// byte-wise — exactly the states a crash inside a non-atomic data write
/// may legally leave.
fn torn_mix(old: &[u8], new: &[u8], picks: &[u8]) -> Vec<u8> {
    (0..new.len().max(old.len()))
        .map(|i| match picks.get(i).map(|p| p % 3).unwrap_or(0) {
            0 => old.get(i).copied().unwrap_or(0),
            1 => new.get(i).copied().unwrap_or(0),
            _ => 0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any byte-wise mix of old, new, and zero is a legal torn state — for
    /// the written path and equally for a hard-linked alias.
    #[test]
    fn torn_mixes_are_accepted(
        old in proptest::collection::vec(1u8..=255, 1..40),
        new in proptest::collection::vec(1u8..=255, 1..40),
        picks in proptest::collection::vec(any::<u8>(), 40),
        linked in any::<bool>(),
    ) {
        let prev = tree(&old, linked);
        let cur = tree(&new, linked);
        let mixed = torn_mix(&old, &new, &picks);
        // The torn image must have the old or new *size* to be legal; force
        // that by truncating/extending to one of the two lengths.
        let mixed = &mixed[..if picks.first().unwrap_or(&0).is_multiple_of(2) { old.len() } else { new.len() }];
        let mut actual = cur.clone();
        actual.insert("/f".into(), file(7, if linked { 2 } else { 1 }, mixed));
        if linked {
            actual.insert("/g".into(), file(7, 2, mixed));
        }
        prop_assert_eq!(diff_relaxed_write(&actual, &prev, &cur, "/f", false), None);
    }

    /// A byte that is neither old, new, nor zero can never be produced by
    /// a crash inside the write — the relaxation must reject it.
    #[test]
    fn garbage_bytes_are_rejected(
        old in proptest::collection::vec(1u8..=100, 4..40),
        pos_frac in 0.0f64..1.0,
    ) {
        // new = old + 100 keeps every byte in 101..=200; garbage byte 255
        // is neither old, new, nor zero.
        let new: Vec<u8> = old.iter().map(|b| b + 100).collect();
        let prev = tree(&old, false);
        let cur = tree(&new, false);
        let mut data = new.clone();
        let pos = ((data.len() - 1) as f64 * pos_frac) as usize;
        data[pos] = 255;
        let mut actual = cur.clone();
        actual.insert("/f".into(), file(7, 1, &data));
        prop_assert!(diff_relaxed_write(&actual, &prev, &cur, "/f", false).is_some());
    }

    /// The atomic relaxation accepts exactly {old, new, fresh-empty} and
    /// rejects every proper mix.
    #[test]
    fn atomic_accepts_only_endpoints(
        old in proptest::collection::vec(1u8..=100, 2..30),
        flip in any::<bool>(),
    ) {
        let new: Vec<u8> = old.iter().map(|b| b + 100).collect();
        let prev = tree(&old, false);
        let cur = tree(&new, false);

        let endpoint = if flip { &old } else { &new };
        let mut actual = cur.clone();
        actual.insert("/f".into(), file(7, 1, endpoint));
        prop_assert_eq!(diff_atomic_write(&actual, &prev, &cur, "/f", false), None);

        // Half-and-half mix: must be rejected (sizes are equal by
        // construction, so only the contents distinguish it).
        let mid = old.len() / 2;
        let mut mix = old.clone();
        mix[mid..].copy_from_slice(&new[mid..]);
        prop_assert_ne!(&mix, &old);
        prop_assert_ne!(&mix, &new);
        let mut actual = cur.clone();
        actual.insert("/f".into(), file(7, 1, &mix));
        prop_assert!(diff_atomic_write(&actual, &prev, &cur, "/f", false).is_some());
    }

    /// Changes to a file the write never touched are rejected by both
    /// relaxations regardless of what happened to the target.
    #[test]
    fn unrelated_changes_always_rejected(
        old in proptest::collection::vec(1u8..=100, 1..30),
        bystander in proptest::collection::vec(1u8..=255, 1..30),
    ) {
        let new: Vec<u8> = old.iter().map(|b| b + 100).collect();
        let mut prev = tree(&old, false);
        let mut cur = tree(&new, false);
        for t in [&mut prev, &mut cur] {
            if let Some(e) = t.get_mut("/") {
                if let NodeSnap::Dir { ino, nlink, entries } = e.node.as_ref() {
                    let mut entries = entries.clone();
                    entries.push("b".into());
                    *e = SnapEntry::new(NodeSnap::Dir { ino: *ino, nlink: *nlink, entries });
                }
            }
            t.insert("/b".into(), file(9, 1, &bystander));
        }
        let mut actual = cur.clone();
        // Target torn (legal) ...
        actual.insert("/f".into(), file(7, 1, &old));
        // ... but the bystander changed (illegal).
        let mut changed = bystander.clone();
        changed[0] ^= 0xff;
        actual.insert("/b".into(), file(9, 1, &changed));
        prop_assert!(diff_relaxed_write(&actual, &prev, &cur, "/f", false).is_some());
        prop_assert!(diff_atomic_write(&actual, &prev, &cur, "/f", false).is_some());
    }
}
