//! On-device layout: superblock, allocation groups, extent-based inodes,
//! and the write-ahead log.

use vfs::{FsError, FsResult};

/// Block size in bytes.
pub const BLOCK: u64 = 4096;

/// Superblock magic ("XFSDAX01").
pub const MAGIC: u64 = u64::from_le_bytes(*b"XFSDAX01");

/// Inode size in bytes.
pub const INODE_SIZE: u64 = 512;

/// Inline extents per inode.
pub const NEXTENTS: usize = 12;

/// Maximum file size in blocks (bounded by the inline extent map: twelve
/// extents of arbitrary length — the practical bound below keeps reads
/// sane on corrupt images).
pub const MAX_FILE_BLOCKS: u64 = 4096;

/// On-disk directory entry size (shared format with the other block file
/// systems in this workspace).
pub const DENTRY_SIZE: u64 = 56;

/// Dentry slots per directory block.
pub const SLOTS_PER_BLOCK: u64 = BLOCK / DENTRY_SIZE;

/// Maximum dentry name length.
pub const DENTRY_NAME_MAX: usize = 47;

/// The root inode.
pub const ROOT_INO: u64 = 1;

/// Superblock field offsets.
pub mod sboff {
    /// Magic (u64).
    pub const MAGIC: u64 = 0;
    /// Total blocks (u64).
    pub const TOTAL_BLOCKS: u64 = 8;
    /// Inode count (u64).
    pub const INODE_COUNT: u64 = 16;
    /// First log block (u64).
    pub const LOG_START: u64 = 24;
    /// Log length in blocks (u64).
    pub const LOG_BLOCKS: u64 = 32;
    /// Number of allocation groups (u64).
    pub const NAGS: u64 = 40;
    /// Blocks per allocation group (u64).
    pub const AG_SIZE: u64 = 48;
    /// First AG-bitmap block (one block per AG) (u64).
    pub const AGF_START: u64 = 56;
    /// Inode table start block (u64).
    pub const ITABLE: u64 = 64;
    /// First allocatable (data) block (u64).
    pub const DATA_START: u64 = 72;
    /// Log sequence number: next transaction id expected at recovery (u64).
    pub const LOG_SEQ: u64 = 80;
}

/// Inode field offsets.
pub mod ioff {
    /// File type tag (u64).
    pub const FTYPE: u64 = 0;
    /// Link count (u64).
    pub const NLINK: u64 = 8;
    /// Size in bytes (u64).
    pub const SIZE: u64 = 16;
    /// Number of live extents (u64).
    pub const NEXTENTS: u64 = 24;
    /// Xattr block (u64; 0 = none).
    pub const XATTR: u64 = 32;
    /// First extent record: 3 × u64 per record (file block, start, len).
    pub const EXTENTS: u64 = 40;
}

/// Inode type tags.
pub mod itype {
    /// Free slot.
    pub const FREE: u64 = 0;
    /// Regular file.
    pub const FILE: u64 = 1;
    /// Directory.
    pub const DIR: u64 = 2;
}

/// Computed device geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total blocks.
    pub total_blocks: u64,
    /// Inode count.
    pub inode_count: u64,
    /// First log block.
    pub log_start: u64,
    /// Log length in blocks.
    pub log_blocks: u64,
    /// Number of allocation groups.
    pub nags: u64,
    /// Blocks per allocation group.
    pub ag_size: u64,
    /// First AG-bitmap block.
    pub agf_start: u64,
    /// Inode table start block.
    pub itable: u64,
    /// First allocatable block.
    pub data_start: u64,
}

impl Geometry {
    /// Computes the layout for `size` bytes.
    pub fn for_device(size: u64) -> FsResult<Geometry> {
        let total_blocks = size / BLOCK;
        if total_blocks < 64 {
            return Err(FsError::NoSpace);
        }
        let log_start = 1;
        let log_blocks = (total_blocks / 16).clamp(8, 256);
        let nags = 4u64;
        let agf_start = log_start + log_blocks;
        let inode_count = (total_blocks / 4).clamp(64, 2048);
        let itable = agf_start + nags;
        let itable_blocks = (inode_count * INODE_SIZE).div_ceil(BLOCK);
        let data_start = itable + itable_blocks;
        if data_start + nags * 2 > total_blocks {
            return Err(FsError::NoSpace);
        }
        let ag_size = (total_blocks - data_start).div_ceil(nags);
        Ok(Geometry {
            total_blocks,
            inode_count,
            log_start,
            log_blocks,
            nags,
            ag_size,
            agf_start,
            itable,
            data_start,
        })
    }

    /// Device byte offset of inode `ino`.
    pub fn inode_off(&self, ino: u64) -> u64 {
        debug_assert!(ino >= 1 && ino <= self.inode_count);
        self.itable * BLOCK + (ino - 1) * INODE_SIZE
    }

    /// The allocation group a device block belongs to.
    pub fn ag_of(&self, blk: u64) -> u64 {
        debug_assert!(blk >= self.data_start);
        ((blk - self.data_start) / self.ag_size).min(self.nags - 1)
    }

    /// The device-block range of allocation group `ag`.
    pub fn ag_range(&self, ag: u64) -> (u64, u64) {
        let start = self.data_start + ag * self.ag_size;
        let end = (start + self.ag_size).min(self.total_blocks);
        (start, end)
    }

    /// The bitmap block of allocation group `ag`.
    pub fn agf_block(&self, ag: u64) -> u64 {
        self.agf_start + ag
    }

    /// Dentry slot location: (file block index, offset within the block).
    pub fn slot_loc(slot: u64) -> (u64, u64) {
        (slot / SLOTS_PER_BLOCK, (slot % SLOTS_PER_BLOCK) * DENTRY_SIZE)
    }
}

/// Serialized directory entry (ino 0 = free slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDentry {
    /// Target inode.
    pub ino: u64,
    /// Entry name.
    pub name: String,
}

impl RawDentry {
    /// Encodes to the 56-byte on-disk form.
    pub fn encode(&self) -> [u8; DENTRY_SIZE as usize] {
        let mut b = [0u8; DENTRY_SIZE as usize];
        b[0..8].copy_from_slice(&self.ino.to_le_bytes());
        b[8] = self.name.len() as u8;
        b[9..9 + self.name.len()].copy_from_slice(self.name.as_bytes());
        b
    }

    /// Decodes; `None` for a free slot.
    pub fn decode(b: &[u8]) -> Option<RawDentry> {
        let ino = u64::from_le_bytes(b[0..8].try_into().ok()?);
        if ino == 0 {
            return None;
        }
        let n = (b[8] as usize).min(DENTRY_NAME_MAX);
        Some(RawDentry { ino, name: String::from_utf8_lossy(&b[9..9 + n]).into_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_partitions_the_device() {
        let g = Geometry::for_device(8 << 20).unwrap();
        assert_eq!(g.nags, 4);
        assert!(g.agf_start >= g.log_start + g.log_blocks);
        assert!(g.itable >= g.agf_start + g.nags);
        assert!(g.data_start < g.total_blocks);
        // Every data block maps to a valid AG.
        assert_eq!(g.ag_of(g.data_start), 0);
        assert_eq!(g.ag_of(g.total_blocks - 1), g.nags - 1);
        let (s0, e0) = g.ag_range(0);
        assert_eq!(s0, g.data_start);
        assert!(e0 > s0);
    }

    #[test]
    fn inode_fits_its_extent_records() {
        assert!(ioff::EXTENTS + NEXTENTS as u64 * 24 <= INODE_SIZE);
    }

    #[test]
    fn dentry_roundtrip() {
        let d = RawDentry { ino: 4, name: "x".into() };
        assert_eq!(RawDentry::decode(&d.encode()), Some(d));
    }
}
