#![warn(missing_docs)]

//! Chipmunk: a crash-consistency testing framework for PM file systems.
//!
//! This crate is the reproduction of the paper's primary contribution (§3):
//! a record-and-replay framework that, given a workload and a target file
//! system,
//!
//! 1. **records** the workload's PM write stream through the gray-box logger
//!    (`pmlog`), with markers delimiting each system call;
//! 2. **constructs crash states**: at every store fence (strong-guarantee
//!    file systems) or after every fsync-family call (weak guarantees), it
//!    replays subsets of the in-flight writes — in increasing subset size,
//!    optionally capped — on top of the last known-persistent image;
//! 3. **checks** each crash state by mounting the target file system on it
//!    (recovery itself being the first check) and comparing the recovered
//!    tree against oracle states captured from a crash-free run: atomicity
//!    for crashes during a system call, synchrony for crashes after one,
//!    stability of unrelated files, and a usability probe; and
//! 4. **reports** violations, with triage clustering for fuzzing campaigns.
//!
//! The crate is generic over [`vfs::FsKind`], so the same machinery tests
//! every file system in this workspace, exactly as Chipmunk tests any POSIX
//! PM file system.
//!
//! # Example
//!
//! ```
//! use chipmunk::{test_workload, TestConfig};
//! use ext4dax::Ext4DaxKind;
//! use vfs::{Op, Workload};
//!
//! let kind = Ext4DaxKind::default();
//! let w = Workload::new(
//!     "demo",
//!     vec![
//!         Op::Creat { path: "/foo".into() },
//!         Op::WritePath { path: "/foo".into(), off: 0, size: 100 },
//!         Op::FsyncPath { path: "/foo".into() },
//!     ],
//! );
//! let outcome = test_workload(&kind, &w, &TestConfig::default());
//! assert!(outcome.reports.is_empty(), "{:?}", outcome.reports);
//! assert!(outcome.crash_states > 0);
//! ```

pub mod checker;
pub mod config;
pub mod crashgen;
pub mod exec;
pub(crate) mod footprint;
pub mod harness;
pub mod oracle;
pub mod prefix;
pub mod report;
pub mod sandbox;
pub mod shrink;

pub use config::TestConfig;
pub use harness::{check_one_state, test_workload, PhaseTimings, StateProbe, TestOutcome};
pub use oracle::Scope;
pub use prefix::{test_workload_cached, PrefixCache};
pub use report::{exemplar, triage, BugReport, CrashPhase, Stage, Violation};
pub use shrink::{shrink, ShrinkStats, Shrunk};
