//! Prefix-tree-aware deterministic scheduling of workload batches.
//!
//! The incremental engine's [`PrefixCache`] and multi-thread workload
//! sharding used to be mutually exclusive: sharding scattered a batch's
//! workloads across workers by arrival position, destroying the adjacent
//! shared op prefixes the cache feeds on. The [`Scheduler`] composes them:
//!
//! 1. [`plan_subtrees`] partitions a batch into **prefix subtrees** — the
//!    groups of workloads sharing their first operation, each sorted
//!    op-lexicographically so neighbours inside a group share the deepest
//!    possible prefixes. Workloads in *different* groups share no ops at
//!    all, so cutting the batch at group boundaries loses zero prefix reuse.
//! 2. Whole groups are assigned to workers round-robin **by sorted group
//!    key**, never by arrival order, and each worker owns a private
//!    [`PrefixCache`] (the caches are `Send`; checkpoints move with their
//!    worker). Results commit in canonical batch order.
//! 3. When the batch has fewer subtrees than the config has threads, the
//!    leftover parallelism moves *inside* each worker: its workloads run
//!    with `threads = total / groups`, which parallelizes the crash-subset
//!    checks of each crash point (bit-identical to the serial walk by
//!    construction, see `chipmunk::harness`).
//!
//! Determinism across thread counts falls out of three invariants: each
//! workload's outcome is a pure function of the workload (the cache's
//! differential tests pin cached ≡ uncached); a group's internal execution
//! order is the same whichever worker runs it; and the first workload of a
//! group always resumes from depth 0 (no ops shared with any other group),
//! so per-workload `prefix_hits`/`prefix_ops_saved` cannot depend on which
//! groups preceded it on the same worker. Per-worker caches are [`reset`]
//! at the start of every scheduled call so counters are a pure function of
//! the batch, not of scheduling history.
//!
//! [`reset`]: PrefixCache::reset

use std::collections::{BTreeMap, BTreeSet, HashSet};

use chipmunk::{sandbox, PrefixCache, Stage, TestConfig, TestOutcome};
use vfs::{BugId, FsKind, Workload};

/// What one scheduled workload produces: its outcome, the crash-state
/// coverage keys it visited, and the bug ids it tripped.
pub type WorkloadResult = (TestOutcome, HashSet<u64>, BTreeSet<BugId>);

/// A deterministic partition of one batch into prefix subtrees.
///
/// Produced by [`plan_subtrees`]; a pure function of the op-description
/// keys, invariant under permutation of the batch (group membership and
/// intra-group order depend only on the keys and their batch indices as
/// tie-breaks).
pub struct SubtreePlan {
    /// Batch indices per subtree. Groups are ordered by their root op
    /// description; members are ordered op-lexicographically (batch index
    /// breaks exact-duplicate ties). Concatenating the groups reproduces
    /// exactly the global op-lexicographic execution order the serial cached
    /// runner has always used.
    pub groups: Vec<Vec<usize>>,
    /// Deepest common op prefix within any single group (a singleton
    /// group's depth is its own op count).
    pub max_depth: u64,
}

/// Groups a batch (given each workload's op-description key) into prefix
/// subtrees keyed by the first operation. See [`SubtreePlan`].
pub fn plan_subtrees(keys: &[Vec<String>]) -> SubtreePlan {
    let mut by_root: BTreeMap<Option<&String>, Vec<usize>> = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        by_root.entry(k.first()).or_default().push(i);
    }
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(by_root.len());
    let mut max_depth = 0u64;
    for (_, mut members) in by_root {
        members.sort_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
        let mut depth = keys[members[0]].len();
        for &m in &members[1..] {
            let lcp = keys[members[0]]
                .iter()
                .zip(&keys[m])
                .take_while(|(a, b)| a == b)
                .count();
            depth = depth.min(lcp);
        }
        max_depth = max_depth.max(depth as u64);
        groups.push(members);
    }
    SubtreePlan { groups, max_depth }
}

/// How many worker threads a scheduled call uses, and how many inner
/// threads each worker's `TestConfig` gets. Subtree-level splitting wins
/// when there are at least as many groups as threads; otherwise the spare
/// parallelism shifts to subset-level splitting inside each worker.
fn split_levels(threads: usize, groups: usize) -> (usize, usize) {
    let threads = threads.max(1);
    let workers = threads.min(groups).max(1);
    let inner = if groups >= threads { 1 } else { (threads / groups.max(1)).max(1) };
    (workers, inner)
}

/// A prefix-tree-aware batch scheduler: per-worker [`PrefixCache`]s plus the
/// deterministic subtree partitioning that keeps them effective under
/// `threads > 1`. Create one next to a batch loop (where a bare
/// `PrefixCache` used to live) and feed batches through [`Scheduler::run`]
/// — or through [`crate::run_batch_cached`], which also absorbs sinks.
pub struct Scheduler<K: FsKind> {
    kind: K,
    caches: Vec<PrefixCache<K>>,
    /// Cumulative subtree count across all scheduled batches.
    pub subtrees: u64,
    /// Deepest within-subtree shared prefix seen in any batch.
    pub subtree_max_depth: u64,
    /// Cumulative `prefix_hits` per worker slot. Length = the most workers
    /// any batch used; unlike every other counter this *is* a function of
    /// the thread count (it describes the schedule, not the results), so it
    /// stays out of determinism fingerprints.
    pub per_worker_hits: Vec<u64>,
}

impl<K: FsKind> Scheduler<K> {
    /// Creates a scheduler testing workloads under `kind`.
    pub fn new(kind: &K, cfg: &TestConfig) -> Self {
        Scheduler {
            kind: kind.clone(),
            caches: vec![PrefixCache::new(kind, cfg)],
            subtrees: 0,
            subtree_max_depth: 0,
            per_worker_hits: Vec::new(),
        }
    }

    /// Whether the caches are live (see [`PrefixCache::is_active`]; a kind
    /// that cannot fork disables its cache on first use, after which every
    /// batch should take the plain sharded path).
    pub fn is_active(&self) -> bool {
        self.caches.iter().all(|c| c.is_active())
    }

    /// Runs `batch`, returning per-workload `(outcome, coverage, trace)`
    /// triples **in batch order**, byte-identical for every `cfg.threads`.
    /// Sinks are private per workload — callers absorb them in batch order
    /// (see [`crate::run_batch_cached`]).
    pub fn run(
        &mut self,
        batch: &[Workload],
        cfg: &TestConfig,
    ) -> Vec<WorkloadResult> {
        let keys: Vec<Vec<String>> = batch
            .iter()
            .map(|w| w.ops.iter().map(|o| o.describe()).collect())
            .collect();
        let plan = plan_subtrees(&keys);
        self.subtrees += plan.groups.len() as u64;
        self.subtree_max_depth = self.subtree_max_depth.max(plan.max_depth);

        let (workers, inner) = split_levels(cfg.threads, plan.groups.len());
        while self.caches.len() < workers {
            self.caches.push(PrefixCache::new(&self.kind, cfg));
        }
        if self.per_worker_hits.len() < workers {
            self.per_worker_hits.resize(workers, 0);
        }
        for c in &mut self.caches {
            c.reset();
        }
        let wcfg = TestConfig { threads: inner, ..cfg.clone() };

        let mut slots: Vec<Option<WorkloadResult>> = Vec::with_capacity(batch.len());
        slots.resize_with(batch.len(), || None);
        let mut hits = vec![0u64; workers];

        if workers <= 1 {
            let cache = &mut self.caches[0];
            for g in &plan.groups {
                for &i in g {
                    let r = cache.run(&batch[i], &wcfg);
                    hits[0] += r.0.prefix_hits;
                    slots[i] = Some(r);
                }
            }
        } else {
            // Round-robin whole groups over workers by sorted-group index.
            let mut assign: Vec<Vec<usize>> = vec![Vec::new(); workers];
            for g in 0..plan.groups.len() {
                assign[g % workers].push(g);
            }
            type WorkerOut = (u64, Vec<(usize, WorkloadResult)>);
            let plan2 = &plan;
            let wcfg2 = &wcfg;
            let worker_results: Vec<std::thread::Result<WorkerOut>> =
                std::thread::scope(|sc| {
                    let handles: Vec<_> = self
                        .caches
                        .iter_mut()
                        .take(workers)
                        .zip(&assign)
                        .map(|(cache, gs)| {
                            sc.spawn(move || {
                                let mut out = Vec::new();
                                let mut h = 0u64;
                                for &g in gs {
                                    for &i in &plan2.groups[g] {
                                        let r = cache.run(&batch[i], wcfg2);
                                        h += r.0.prefix_hits;
                                        out.push((i, r));
                                    }
                                }
                                (h, out)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join()).collect()
                });
            for (w, res) in worker_results.into_iter().enumerate() {
                match res {
                    Ok((h, rs)) => {
                        hits[w] = h;
                        for (i, r) in rs {
                            slots[i] = Some(r);
                        }
                    }
                    Err(_) => {
                        // The worker died mid-group; its cache dropped its
                        // live state during the unwind (the next run falls
                        // back to genesis). Re-run its items one at a time
                        // so only the panicking workload fails, with a
                        // worker-stage diagnostic.
                        let cache = &mut self.caches[w];
                        for &g in &assign[w] {
                            for &i in &plan.groups[g] {
                                let r = sandbox::guarded(Stage::Worker, || {
                                    cache.run(&batch[i], &wcfg)
                                })
                                .unwrap_or_else(|v| {
                                    (
                                        crate::worker_failure_outcome(&batch[i], v),
                                        HashSet::new(),
                                        BTreeSet::new(),
                                    )
                                });
                                hits[w] += r.0.prefix_hits;
                                slots[i] = Some(r);
                            }
                        }
                    }
                }
            }
        }
        for (w, h) in hits.into_iter().enumerate() {
            self.per_worker_hits[w] += h;
        }

        let mut out: Vec<_> =
            slots.into_iter().map(|s| s.expect("every batch slot filled")).collect();
        if let Some(first) = out.first_mut() {
            first.0.sched_subtrees = plan.groups.len() as u64;
            first.0.sched_subtree_max_depth = plan.max_depth;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(ops: &[&str]) -> Vec<String> {
        ops.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn plan_is_a_partition_grouped_by_root() {
        let keys = vec![
            k(&["mkdir /a", "creat /a/f"]),
            k(&["creat /x", "fsync /x"]),
            k(&["mkdir /a", "creat /a/g"]),
            k(&[]),
            k(&["creat /x"]),
        ];
        let plan = plan_subtrees(&keys);
        // Groups ordered by root key: empty first, then creat, then mkdir.
        assert_eq!(plan.groups, vec![vec![3], vec![4, 1], vec![0, 2]]);
        let mut all: Vec<usize> = plan.groups.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn concatenated_groups_equal_global_sort() {
        let keys = vec![
            k(&["b", "x"]),
            k(&["a", "z"]),
            k(&["b", "a"]),
            k(&["a", "a"]),
            k(&["a", "z"]),
        ];
        let plan = plan_subtrees(&keys);
        let concat: Vec<usize> = plan.groups.concat();
        let mut global: Vec<usize> = (0..keys.len()).collect();
        global.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
        assert_eq!(concat, global);
    }

    #[test]
    fn max_depth_is_deepest_shared_prefix() {
        let keys = vec![
            k(&["a", "b", "c"]),
            k(&["a", "b", "d"]),
            k(&["x"]),
        ];
        let plan = plan_subtrees(&keys);
        // Group "a" shares ["a", "b"] (depth 2); singleton "x" has depth 1.
        assert_eq!(plan.max_depth, 2);
        let single = plan_subtrees(&[k(&["p", "q", "r"])]);
        assert_eq!(single.max_depth, 3, "a singleton chain is its own depth");
    }

    #[test]
    fn split_levels_trade_subtrees_for_inner_threads() {
        assert_eq!(split_levels(1, 10), (1, 1));
        assert_eq!(split_levels(8, 10), (8, 1), "enough subtrees: all outer");
        assert_eq!(split_levels(8, 2), (2, 4), "few subtrees: split inside");
        assert_eq!(split_levels(8, 1), (1, 8));
        assert_eq!(split_levels(4, 3), (3, 1), "remainder stays outer");
        assert_eq!(split_levels(2, 0), (1, 2), "empty batch is harmless");
    }

    #[test]
    fn plan_is_permutation_invariant_modulo_duplicate_ties() {
        let keys = vec![k(&["m", "n"]), k(&["m"]), k(&["q", "r"]), k(&["q", "r", "s"])];
        let plan = plan_subtrees(&keys);
        // Reverse the batch; the groups must contain the same key multisets
        // in the same order.
        let rev: Vec<Vec<String>> = keys.iter().rev().cloned().collect();
        let plan_rev = plan_subtrees(&rev);
        let names = |p: &SubtreePlan, ks: &[Vec<String>]| -> Vec<Vec<Vec<String>>> {
            p.groups.iter().map(|g| g.iter().map(|&i| ks[i].clone()).collect()).collect()
        };
        assert_eq!(names(&plan, &keys), names(&plan_rev, &rev));
    }
}
