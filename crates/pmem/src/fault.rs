//! Deterministic fault injection for the chaos self-test harness.
//!
//! The paper's kernel file systems panic and hang *during recovery on crash
//! states* — several of its 23 bugs are exactly that — and Chipmunk survives
//! them because each target runs in a VM. This reproduction runs everything
//! in process, so the sandbox layer (`core::sandbox`) must absorb those
//! failures instead. [`FaultPlan`] + [`FaultDevice`] exist to *prove* that it
//! does: they inject panics, fuel-burning hangs, and torn 8-byte stores at
//! chosen device-operation indices, deterministically, so the chaos
//! self-tests can assert that an arbitrary mid-recovery failure surfaces as a
//! classified bug report with bit-identical counters at any thread count.
//!
//! Determinism is the load-bearing property. All triggers are indexed by the
//! device-op counter of a single *lineage* (one mount, or one mkfs+record
//! run), which is a pure function of the op stream the file system issues —
//! never of wall-clock, thread identity, or scheduling. Cloning a
//! [`FaultDevice`] (prefix-cache checkpoint forks) clones the counters, so a
//! resumed lineage behaves exactly like a re-executed one.

use std::cell::Cell;

use crate::{
    backend::PmBackend,
    cost::{self, SimCost},
};

/// Where injected faults should fire, as device-op indices (1-based: the
/// first op a lineage issues has index 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Mount lineages: panic when the n-th device op is issued. Models a
    /// recovery-path panic on a crash state.
    pub mount_panic_at: Option<u64>,
    /// Mount lineages: spin forever (burning watchdog fuel) at the n-th
    /// device op. Models a recovery loop that never terminates.
    pub mount_hang_at: Option<u64>,
    /// Record lineage (mkfs + recorded run): panic at the n-th device op.
    /// Fires *outside* the per-stage sandbox, exercising the worker-level
    /// requeue paths.
    pub record_panic_at: Option<u64>,
    /// Record lineage: tear the n-th write-class op, persisting only the
    /// first half of its leading 8-byte word and dropping the rest.
    pub torn_store_at: Option<u64>,
    /// Mount lineages: panic when the post-mount tree walk issues its n-th
    /// probe (`readdir` or `stat`). Models file-system code that crashes
    /// only when recovery's lazily-rebuilt structures are first traversed.
    pub walk_panic_at: Option<u64>,
    /// Mount lineages: spin forever (burning watchdog fuel) at the walk's
    /// n-th probe. Models a traversal that loops on a corrupt structure.
    pub walk_hang_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether this plan injects any fault at all.
    pub fn is_noop(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// Which lineage a [`FaultDevice`] instance is metering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRole {
    /// A mount on a crash state (checking pipeline).
    Mount,
    /// The mkfs + recorded-run lineage.
    Record,
}

/// A [`PmBackend`] wrapper that counts device ops and fires the faults its
/// [`FaultPlan`] schedules for its lineage.
///
/// Counters use `Cell` because `read` takes `&self`; the device is still
/// owned by one thread at a time (`PmBackend` is `Send`, not `Sync`).
pub struct FaultDevice<D> {
    inner: D,
    plan: FaultPlan,
    role: FaultRole,
    ops: Cell<u64>,
    writes: Cell<u64>,
}

impl<D: Clone> Clone for FaultDevice<D> {
    fn clone(&self) -> Self {
        FaultDevice {
            inner: self.inner.clone(),
            plan: self.plan,
            role: self.role,
            ops: self.ops.clone(),
            writes: self.writes.clone(),
        }
    }
}

impl<D: PmBackend> FaultDevice<D> {
    /// Wraps `inner`, arming `plan` for `role`'s lineage starting at op 0.
    pub fn new(inner: D, plan: FaultPlan, role: FaultRole) -> Self {
        FaultDevice { inner, plan, role, ops: Cell::new(0), writes: Cell::new(0) }
    }

    /// Device ops issued through this wrapper so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops.get()
    }

    /// Counts one device op and fires any fault scheduled at its index.
    fn step(&self) {
        let n = self.ops.get() + 1;
        self.ops.set(n);
        match self.role {
            FaultRole::Mount => {
                if self.plan.mount_panic_at == Some(n) {
                    panic!("chaos: injected panic at mount op {n}");
                }
                if self.plan.mount_hang_at == Some(n) {
                    if cost::fuel_armed() {
                        // An endless recovery loop still drives the device,
                        // so it burns watchdog fuel until FuelExhausted.
                        loop {
                            cost::tick(64);
                        }
                    }
                    // Actually looping here would hang the process; the
                    // chaos tests only inject hangs under an armed watchdog.
                    panic!("chaos: injected hang at mount op {n} (no fuel watchdog armed)");
                }
            }
            FaultRole::Record => {
                if self.plan.record_panic_at == Some(n) {
                    panic!("chaos: injected panic at record op {n}");
                }
            }
        }
    }

    /// Counts one write-class op; returns `true` if it must be torn.
    fn step_write(&self) -> bool {
        let n = self.writes.get() + 1;
        self.writes.set(n);
        self.role == FaultRole::Record && self.plan.torn_store_at == Some(n)
    }
}

impl<D: PmBackend> PmBackend for FaultDevice<D> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        self.step();
        self.inner.read(off, buf);
    }

    fn store(&mut self, off: u64, data: &[u8]) {
        self.step();
        if self.step_write() {
            let keep = torn_len(data.len());
            self.inner.store(off, &data[..keep]);
            return;
        }
        self.inner.store(off, data);
    }

    fn memcpy_nt(&mut self, off: u64, data: &[u8]) {
        self.step();
        if self.step_write() {
            let keep = torn_len(data.len());
            self.inner.memcpy_nt(off, &data[..keep]);
            return;
        }
        self.inner.memcpy_nt(off, data);
    }

    fn memset_nt(&mut self, off: u64, val: u8, len: u64) {
        self.step();
        if self.step_write() {
            self.inner.memset_nt(off, val, torn_len(len as usize) as u64);
            return;
        }
        self.inner.memset_nt(off, val, len);
    }

    fn flush(&mut self, off: u64, len: u64) {
        self.step();
        self.inner.flush(off, len);
    }

    fn fence(&mut self) {
        self.step();
        self.inner.fence();
    }

    fn note_media_read(&mut self, len: u64) {
        self.inner.note_media_read(len);
    }

    fn sim_cost(&self) -> SimCost {
        self.inner.sim_cost()
    }
}

// ---------------------------------------------------------------------------
// Walker-probe faults.
//
// The tree walk runs above the device layer — `readdir`/`stat` calls on the
// mounted file system — so device-op indices cannot address it precisely.
// Instead the chaos FS kind arms a thread-local probe plan on each
// Mount-lineage mount (resetting the counter, which keeps firing a pure
// function of the crash-state image: mount and walk always run back-to-back
// on one thread), and the walker ticks it once per probe. Non-chaos kinds
// never arm it, and the Record lineage (`mkfs`, whose file system the oracle
// walks) explicitly disarms it, so oracle-side walks are never perturbed.

thread_local! {
    static WALK_FAULTS: Cell<WalkFaults> = const {
        Cell::new(WalkFaults { panic_at: None, hang_at: None, probes: 0 })
    };
}

#[derive(Clone, Copy)]
struct WalkFaults {
    panic_at: Option<u64>,
    hang_at: Option<u64>,
    probes: u64,
}

/// Arms (or, with two `None`s, disarms) walker-probe faults on the calling
/// thread and resets the probe counter. Called by the chaos FS kind at every
/// mount so each walk lineage counts its probes from zero.
pub fn arm_walk_faults(panic_at: Option<u64>, hang_at: Option<u64>) {
    WALK_FAULTS.with(|w| w.set(WalkFaults { panic_at, hang_at, probes: 0 }));
}

/// Counts one walker probe (`readdir` or `stat`) and fires any armed fault
/// at its 1-based index. A no-op on threads where nothing is armed.
pub fn walk_probe() {
    WALK_FAULTS.with(|w| {
        let mut st = w.get();
        if st.panic_at.is_none() && st.hang_at.is_none() {
            return;
        }
        st.probes += 1;
        let n = st.probes;
        w.set(st);
        if st.panic_at == Some(n) {
            panic!("chaos: injected panic at walk probe {n}");
        }
        if st.hang_at == Some(n) {
            if cost::fuel_armed() {
                // A looping traversal still burns watchdog fuel until
                // FuelExhausted unwinds it.
                loop {
                    cost::tick(64);
                }
            }
            panic!("chaos: injected hang at walk probe {n} (no fuel watchdog armed)");
        }
    });
}

/// Bytes that survive a torn write: half of the leading 8-byte word (real PM
/// guarantees 8-byte atomicity; a torn store models firmware/media failure
/// below that granularity), or half the data for sub-word writes.
fn torn_len(len: usize) -> usize {
    if len >= 8 {
        4
    } else {
        len / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FuelGuard;

    fn base(len: usize) -> Vec<u8> {
        vec![0u8; len]
    }

    #[test]
    fn noop_plan_is_transparent() {
        let img = base(4096);
        let cow = crate::CowDevice::new(&img);
        let mut dev = FaultDevice::new(cow, FaultPlan::none(), FaultRole::Mount);
        dev.store(0, &[7u8; 16]);
        let mut b = [0u8; 16];
        dev.read(0, &mut b);
        assert_eq!(b, [7u8; 16]);
        assert_eq!(dev.ops_seen(), 2);
    }

    #[test]
    fn mount_panic_fires_at_exact_op() {
        let img = base(4096);
        let plan = FaultPlan { mount_panic_at: Some(3), ..FaultPlan::default() };
        let err = std::panic::catch_unwind(|| {
            let cow = crate::CowDevice::new(&img);
            let mut dev = FaultDevice::new(cow, plan, FaultRole::Mount);
            let mut b = [0u8; 8];
            dev.read(0, &mut b); // op 1
            dev.read(8, &mut b); // op 2
            dev.store(0, &[1]); // op 3: boom
        })
        .expect_err("op 3 must panic");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert_eq!(msg, "chaos: injected panic at mount op 3");
    }

    #[test]
    fn mount_hang_burns_fuel_into_fuel_exhausted() {
        let img = base(4096);
        let plan = FaultPlan { mount_hang_at: Some(1), ..FaultPlan::default() };
        let err = std::panic::catch_unwind(|| {
            let _fuel = FuelGuard::arm(Some(10_000));
            let cow = crate::CowDevice::new(&img);
            let dev = FaultDevice::new(cow, plan, FaultRole::Mount);
            let mut b = [0u8; 8];
            dev.read(0, &mut b);
        })
        .expect_err("hang must exhaust fuel");
        assert!(
            err.downcast_ref::<cost::FuelExhausted>().is_some(),
            "hang surfaces as FuelExhausted, not a plain panic"
        );
    }

    #[test]
    fn record_faults_do_not_fire_in_mount_role() {
        let img = base(4096);
        let plan =
            FaultPlan { record_panic_at: Some(1), torn_store_at: Some(1), ..FaultPlan::default() };
        let cow = crate::CowDevice::new(&img);
        let mut dev = FaultDevice::new(cow, plan, FaultRole::Mount);
        dev.store(0, &[9u8; 16]);
        let mut b = [0u8; 16];
        dev.read(0, &mut b);
        assert_eq!(b, [9u8; 16], "mount role ignores record-lineage faults");
    }

    #[test]
    fn torn_store_keeps_half_a_word() {
        let img = base(4096);
        let plan = FaultPlan { torn_store_at: Some(2), ..FaultPlan::default() };
        let cow = crate::CowDevice::new(&img);
        let mut dev = FaultDevice::new(cow, plan, FaultRole::Record);
        dev.store(0, &[0xAA; 16]); // write 1: intact
        dev.store(100, &[0xBB; 16]); // write 2: torn — only 4 bytes land
        let mut b = [0u8; 16];
        dev.read(0, &mut b);
        assert_eq!(b, [0xAA; 16]);
        dev.read(100, &mut b);
        assert_eq!(&b[..4], &[0xBB; 4]);
        assert_eq!(&b[4..], &[0u8; 12]);
    }

    #[test]
    fn clone_carries_lineage_counters() {
        let img = vec![0u8; 4096];
        let fork = crate::ForkDevice::new(img.len() as u64);
        let plan = FaultPlan { mount_panic_at: Some(3), ..FaultPlan::default() };
        let dev = FaultDevice::new(fork, plan, FaultRole::Mount);
        let mut b = [0u8; 8];
        dev.read(0, &mut b); // op 1
        let cloned = dev.clone();
        assert_eq!(cloned.ops_seen(), 1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cloned.read(0, &mut b); // op 2
            cloned.read(0, &mut b); // op 3: boom
        }))
        .expect_err("clone continues the lineage count");
        assert!(err.downcast_ref::<String>().is_some());
    }
}
