//! `campaignd`: the persistent, resumable, multi-process campaign service.
//!
//! Coordinator mode initialises (or reopens) an on-disk campaign store,
//! spawns N worker processes over the store's file-based work queue, waits
//! for them, runs an in-process mop-up worker (which reclaims the leases of
//! any worker that died), and merges all task results in canonical order
//! into the deterministic `campaign.json` — byte-identical for any worker
//! count, thread count, or kill/resume pattern.
//!
//! ```sh
//! campaignd --store <dir> [--fs NOVA] [--bug N] [--seq1-take N] [--seq2-step N]
//!           [--fuzz-budget N] [--seed HEX] [--batch N] [--cap N|none]
//!           [--bitmap-bits N] [--workers N] [--threads N] [--ttl-ms N]
//! campaignd --resume <dir> [--workers N] [--threads N] [--ttl-ms N]
//! campaignd --worker --store <dir> [--threads N] [--ttl-ms N] [--worker-id ID] [--die-after N]
//! ```
//!
//! `--resume` reopens an existing store and continues it under the
//! persisted spec (spec flags are rejected — a campaign's population is
//! immutable). `--workers 0` initialises the store and exits without
//! running anything — for driving detached workers by hand (or from CI)
//! and merging later with `--resume`. Worker mode is what the coordinator
//! spawns; `--die-after N`
//! aborts the worker process after N journal checkpoints (the CI smoke
//! job's stand-in for a SIGKILL that lands exactly on a checkpoint
//! boundary; killing mid-append is exercised separately and only tears the
//! journal tail). Unknown flags, malformed numbers, and extra arguments are
//! fatal (exit 2).
//!
//! `--torture HEX` is a *runtime* flag (valid with `--store`, `--resume`,
//! and `--worker`; never part of the spec): every filesystem touch goes
//! through a deterministic fault injector seeded with
//! `fnv1a(worker_id, HEX)` — short writes, EIO, torn appends, lying
//! writes. The campaign must still converge to the byte-identical
//! fault-free `campaign.json`, or halt declaring why. Store errors map to
//! distinct exit codes: 2 for corrupt input, 3 for the degraded
//! out-of-space mode (after printing a read-only triage of what survived),
//! 1 for everything else.

use std::path::PathBuf;
use std::time::Duration;

use bench::campaign::{
    hostio::{FaultSpec, HostCtx, StoreError},
    runner::{self, RunOpts},
    store::CampaignStore,
    wire::fnv1a,
    CampaignSpec,
};
use bench::jsonout::JVal;
use vfs::FsName;

fn usage() -> ! {
    eprintln!(
        "usage: campaignd --store <dir> [--fs NAME] [--bug N] [--seq1-take N] [--seq2-step N]\n\
         \x20                [--fuzz-budget N] [--seed HEX] [--batch N] [--cap N|none]\n\
         \x20                [--bitmap-bits N] [--workers N] [--threads N] [--ttl-ms N]\n\
         \x20                [--torture HEX]\n\
         \x20      campaignd --resume <dir> [--workers N] [--threads N] [--ttl-ms N] [--torture HEX]\n\
         \x20      campaignd --worker --store <dir> [--threads N] [--ttl-ms N] [--worker-id ID]\n\
         \x20                [--die-after N] [--torture HEX]"
    );
    std::process::exit(2);
}

fn flag_value(flag: &str, it: &mut impl Iterator<Item = String>) -> String {
    it.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage()
    })
}

fn parse_num<T: std::str::FromStr>(what: &str, s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad {what}: {s:?}");
        usage()
    })
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}

/// Exits with the error's mapped code (2 corrupt, 3 exhausted, 1 other).
/// On the degraded out-of-space path, first prints a read-only triage of
/// the store — ENOSPC stops writes, not the operator's view of what
/// survived.
fn fail_store(store: Option<&CampaignStore>, e: StoreError) -> ! {
    eprintln!("error: {e}");
    if let (Some(s), StoreError::Exhausted { .. }) = (store, &e) {
        let audit = runner::merge_read_only(s);
        eprintln!(
            "degraded store triage (read-only): {} tasks committed ({} workloads, {} reports); \
             {} corrupt, {} missing; resume with space freed to finish the campaign",
            audit.committed,
            audit.workloads,
            audit.reports,
            audit.corrupt.len(),
            audit.missing.len(),
        );
    }
    std::process::exit(e.exit_code());
}

/// The host-I/O context for one worker: passthrough normally, the
/// deterministic fault injector under `--torture` (each worker gets its
/// own fault schedule, derived from the shared seed and its worker id).
fn host_ctx(torture: Option<u64>, worker_id: &str) -> HostCtx {
    match torture {
        Some(seed) => HostCtx::faulty(FaultSpec::standard(fnv1a(worker_id.as_bytes(), seed))),
        None => HostCtx::passthrough(),
    }
}

fn main() {
    let mut store_dir: Option<PathBuf> = None;
    let mut resume_dir: Option<PathBuf> = None;
    let mut worker_mode = false;
    let mut worker_id: Option<String> = None;
    let mut die_after: Option<u64> = None;
    let mut workers: usize = 2;
    let mut threads: usize = 1;
    let mut ttl_ms: u64 = 5000;
    let mut torture: Option<u64> = None;
    let mut spec = CampaignSpec::default();
    let mut spec_flags = false;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => store_dir = Some(PathBuf::from(flag_value("--store", &mut it))),
            "--resume" => resume_dir = Some(PathBuf::from(flag_value("--resume", &mut it))),
            "--worker" => worker_mode = true,
            "--worker-id" => worker_id = Some(flag_value("--worker-id", &mut it)),
            "--die-after" => {
                die_after = Some(parse_num("--die-after", &flag_value("--die-after", &mut it)));
            }
            "--workers" => workers = parse_num("--workers", &flag_value("--workers", &mut it)),
            "--threads" => threads = parse_num("--threads", &flag_value("--threads", &mut it)),
            "--ttl-ms" => ttl_ms = parse_num("--ttl-ms", &flag_value("--ttl-ms", &mut it)),
            "--torture" => {
                let s = flag_value("--torture", &mut it);
                torture = Some(u64::from_str_radix(&s, 16).unwrap_or_else(|_| {
                    eprintln!("bad --torture (hex): {s:?}");
                    usage()
                }));
            }
            "--fs" => {
                spec.fs = flag_value("--fs", &mut it).parse::<FsName>().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
                spec_flags = true;
            }
            "--bug" => {
                spec.bug = Some(parse_num("--bug", &flag_value("--bug", &mut it)));
                spec_flags = true;
            }
            "--seq1-take" => {
                spec.seq1_take = parse_num("--seq1-take", &flag_value("--seq1-take", &mut it));
                spec_flags = true;
            }
            "--seq2-step" => {
                spec.seq2_step = parse_num("--seq2-step", &flag_value("--seq2-step", &mut it));
                spec_flags = true;
            }
            "--fuzz-budget" => {
                spec.fuzz_budget =
                    parse_num("--fuzz-budget", &flag_value("--fuzz-budget", &mut it));
                spec_flags = true;
            }
            "--seed" => {
                let s = flag_value("--seed", &mut it);
                spec.fuzz_seed = u64::from_str_radix(&s, 16).unwrap_or_else(|_| {
                    eprintln!("bad --seed (hex): {s:?}");
                    usage()
                });
                spec_flags = true;
            }
            "--batch" => {
                spec.batch = parse_num::<usize>("--batch", &flag_value("--batch", &mut it)).max(1);
                spec_flags = true;
            }
            "--cap" => {
                let s = flag_value("--cap", &mut it);
                spec.cap = if s == "none" { None } else { Some(parse_num("--cap", &s)) };
                spec_flags = true;
            }
            "--bitmap-bits" => {
                spec.bitmap_bits =
                    parse_num("--bitmap-bits", &flag_value("--bitmap-bits", &mut it));
                if !spec.bitmap_bits.is_power_of_two() {
                    eprintln!("--bitmap-bits must be a power of two");
                    usage();
                }
                spec_flags = true;
            }
            s => {
                eprintln!("unknown argument {s:?}");
                usage();
            }
        }
    }
    if let Some(n) = spec.bug {
        if !vfs::bugs::bug_table().iter().any(|b| b.id.number() == n) {
            eprintln!("no bug #{n} in the Table 1 corpus");
            usage();
        }
    }

    let opts = RunOpts {
        threads: threads.max(1),
        ttl: Duration::from_millis(ttl_ms),
        worker_id: worker_id
            .clone()
            .unwrap_or_else(|| format!("w{}", std::process::id())),
        kill_after_checkpoints: die_after,
        hard_kill: true,
    };

    if worker_mode {
        if resume_dir.is_some() || spec_flags {
            eprintln!("--worker takes --store plus worker flags only");
            usage();
        }
        let Some(dir) = store_dir else {
            eprintln!("--worker needs --store");
            usage();
        };
        let io = host_ctx(torture, &opts.worker_id);
        let store = CampaignStore::open_with(&dir, io).unwrap_or_else(|e| fail_store(None, e));
        let sum =
            runner::run_worker(&store, &opts).unwrap_or_else(|e| fail_store(Some(&store), e));
        runner::write_summary(&store, &opts, &sum);
        return;
    }
    if die_after.is_some() || worker_id.is_some() {
        eprintln!("--die-after/--worker-id only make sense with --worker");
        usage();
    }

    let io = host_ctx(torture, "w0");
    let store = match (store_dir, resume_dir) {
        (Some(_), Some(_)) | (None, None) => {
            eprintln!("exactly one of --store / --resume is required");
            usage();
        }
        (Some(dir), None) => CampaignStore::open_or_init_with(&dir, &spec, io)
            .unwrap_or_else(|e| fail_store(None, e)),
        (None, Some(dir)) => {
            if spec_flags {
                eprintln!("--resume continues the persisted spec; spec flags are not allowed");
                usage();
            }
            CampaignStore::open_with(&dir, io).unwrap_or_else(|e| fail_store(None, e))
        }
    };

    let started = std::time::Instant::now();
    let total = store.spec.total_tasks();
    println!(
        "campaign at {} | fs {} | {} tasks ({} ace + {} fuzz) | {} workers x {} threads",
        store.dir.display(),
        store.spec.fs,
        total,
        store.spec.ace_tasks(),
        store.spec.fuzz_tasks(),
        workers,
        threads,
    );
    if workers == 0 {
        // Init-only: the store exists and is ready for detached workers
        // (`campaignd --worker --store <dir>`); a later `--resume` merges.
        println!("initialised only (--workers 0); run workers against the store, then --resume");
        return;
    }

    // Spawn the fleet: each worker is this same binary in --worker mode.
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(e));
    let spawned = workers.saturating_sub(1); // this process is worker 0
    let children: Vec<std::process::Child> = (0..spawned)
        .map(|i| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("--worker")
                .arg("--store")
                .arg(&store.dir)
                .arg("--threads")
                .arg(threads.to_string())
                .arg("--ttl-ms")
                .arg(ttl_ms.to_string())
                .arg("--worker-id")
                .arg(format!("w{}", i + 1));
            if let Some(seed) = torture {
                cmd.arg("--torture").arg(format!("{seed:x}"));
            }
            cmd.spawn().unwrap_or_else(|e| fail(format!("spawn worker: {e}")))
        })
        .collect();

    // Worker 0 runs in-process; it also mops up after any child that dies
    // (dead-pid leases are reclaimed by the stale check). `run_and_merge`
    // re-runs the worker when the merge quarantines a corrupt committed
    // result — the re-lease/re-run loop heals the store, bounded.
    let opts = RunOpts { worker_id: "w0".into(), ..opts };
    let (sum, merged) = match runner::run_and_merge(&store, &opts) {
        Ok(ok) => ok,
        Err(e) => {
            for mut c in children {
                let _ = c.wait();
            }
            fail_store(Some(&store), e)
        }
    };
    runner::write_summary(&store, &opts, &sum);
    for mut c in children {
        let _ = c.wait();
    }

    let elapsed = started.elapsed();
    let run = JVal::Obj(vec![
        ("workers".into(), JVal::Num(workers as f64)),
        ("threads".into(), JVal::Num(threads as f64)),
        ("elapsed_ms".into(), JVal::Num(elapsed.as_millis() as f64)),
        ("tasks_run".into(), JVal::Num(sum.tasks_run as f64)),
        ("tasks_resumed".into(), JVal::Num(sum.tasks_resumed as f64)),
        (
            "journal_workloads_replayed".into(),
            JVal::Num(sum.journal_workloads_replayed as f64),
        ),
        ("rewarm_runs".into(), JVal::Num(sum.rewarm_runs as f64)),
        ("tasks_abandoned".into(), JVal::Num(sum.tasks_abandoned as f64)),
        ("io_retries".into(), JVal::Num(sum.io_retries as f64)),
        ("backoff_ticks".into(), JVal::Num(sum.backoff_ticks as f64)),
        ("tasks_quarantined".into(), JVal::Num(sum.tasks_quarantined as f64)),
        ("faults_injected".into(), JVal::Num(sum.faults_injected as f64)),
        ("degraded".into(), JVal::Bool(sum.degraded)),
    ]);
    store
        .io
        .write_atomic(&store.dir.join("run.json"), (run.render() + "\n").as_bytes())
        .unwrap_or_else(|e| fail_store(Some(&store), e));

    println!(
        "merged {} workloads | {} crash points, {} crash states | {} reports | \
         {} state bits, {} cov bits | {} corpus entries | fingerprint {:016x}",
        merged.workloads,
        merged.totals[0],
        merged.totals[1],
        merged.reports,
        merged.state_bits_set,
        merged.cov_bits_set,
        merged.corpus_entries,
        merged.fingerprint,
    );
    println!(
        "worker w0: {} tasks ({} resumed, {} replayed, {} rewarmed) | prefix ops saved {} | {}",
        sum.tasks_run,
        sum.tasks_resumed,
        sum.journal_workloads_replayed,
        sum.rewarm_runs,
        merged.totals[5],
        bench::fmt_dur(elapsed),
    );
    if torture.is_some() {
        println!(
            "torture: {} faults injected | {} io retries, {} backoff ticks | \
             {} tasks abandoned, {} quarantined",
            sum.faults_injected,
            sum.io_retries,
            sum.backoff_ticks,
            sum.tasks_abandoned,
            sum.tasks_quarantined,
        );
    }
}
