//! Determinism witnesses for parallel crash-state exploration.
//!
//! The sharded harness (`TestConfig::threads`) must be *observationally
//! identical* to the serial walk: for a fixed seed and workload stream,
//! every report, counter, and stop-on-first winner is byte-identical no
//! matter how many workers check crash states. Likewise the crash-state
//! dedup cache must change nothing but wall time and the `dedup_hits`
//! counter.

use bench::{hunt_with_ace, hunt_with_fuzzer, run_suite, HuntResult, SuiteStats};
use chipmunk::TestConfig;
use vfs::{BugId, BugSet, FsName, Workload};
use workloads::ace::{seq2, AceMode};

const THREADS: [usize; 3] = [1, 2, 8];

fn ace_slice() -> Vec<Workload> {
    // A spread of seq-2 workloads: cheap enough for CI, varied enough to
    // exercise many crash points and subset shapes.
    seq2(AceMode::Strong).step_by(7).take(24).collect()
}

/// Strips the wall-clock field so two [`SuiteStats`] can be compared.
fn suite_fingerprint(s: &SuiteStats) -> (u64, u64, u64, u64, u64, Vec<usize>, String) {
    (
        s.workloads,
        s.crash_points,
        s.crash_states,
        s.dedup_hits,
        s.reports,
        s.inflight.clone(),
        format!("{:?}", s.bug_reports),
    )
}

#[test]
fn ace_suite_is_identical_across_thread_counts() {
    let runs: Vec<SuiteStats> = THREADS
        .iter()
        .map(|&t| {
            let cfg = TestConfig::default().with_threads(t);
            run_suite(FsName::Nova, BugSet::as_released(), ace_slice(), &cfg)
        })
        .collect();
    assert!(runs[0].reports > 0, "the slice must surface at least one violation");
    assert!(!runs[0].bug_reports.is_empty());
    let want = suite_fingerprint(&runs[0]);
    for (t, s) in THREADS.iter().zip(&runs).skip(1) {
        assert_eq!(suite_fingerprint(s), want, "threads={t} diverged from threads=1");
    }
}

#[test]
fn dedup_changes_only_the_hit_counter() {
    let base = TestConfig::default().with_threads(2);
    let with = run_suite(FsName::Nova, BugSet::as_released(), ace_slice(), &base);
    let without = run_suite(
        FsName::Nova,
        BugSet::as_released(),
        ace_slice(),
        &TestConfig { dedup: false, ..base },
    );
    assert!(with.dedup_hits > 0, "coalesced subsets should collide often");
    assert_eq!(without.dedup_hits, 0);
    let mut want = suite_fingerprint(&with);
    want.3 = 0; // dedup_hits is the one permitted difference
    assert_eq!(suite_fingerprint(&without), want);
}

/// Strips the wall-clock field so two [`HuntResult`]s can be compared.
fn hunt_fingerprint(h: &Option<HuntResult>) -> Option<(u64, u64, String, String, bool, u64)> {
    h.as_ref().map(|h| {
        (h.workloads, h.states, h.class.clone(), h.detail.clone(), h.traced, h.dedup_hits)
    })
}

#[test]
fn ace_hunt_winner_is_identical_across_thread_counts() {
    let hunts: Vec<_> = THREADS
        .iter()
        .map(|&t| {
            let cfg =
                TestConfig { stop_on_first: true, ..TestConfig::default() }.with_threads(t);
            hunt_with_ace(BugId::B04, &cfg, 0)
        })
        .collect();
    assert!(hunts[0].0.is_some(), "bug 4 must fall to ACE");
    for (t, (h, w, s)) in THREADS.iter().zip(&hunts).skip(1) {
        assert_eq!(hunt_fingerprint(h), hunt_fingerprint(&hunts[0].0), "threads={t}");
        assert_eq!((*w, *s), (hunts[0].1, hunts[0].2), "threads={t}");
    }
}

#[test]
fn seeded_fuzz_campaign_is_identical_across_thread_counts() {
    let hunts: Vec<_> = THREADS
        .iter()
        .map(|&t| {
            let cfg = TestConfig::fuzzing().with_threads(t);
            hunt_with_fuzzer(BugId::B04, &cfg, 0xdecaf, 400)
        })
        .collect();
    assert!(
        hunts[0].0.is_some(),
        "seed 0xdecaf must find bug 4 within 400 workloads (found after {} workloads)",
        hunts[0].1
    );
    for (t, (h, w, s)) in THREADS.iter().zip(&hunts).skip(1) {
        assert_eq!(hunt_fingerprint(h), hunt_fingerprint(&hunts[0].0), "threads={t}");
        assert_eq!((*w, *s), (hunts[0].1, hunts[0].2), "threads={t}");
    }
}
