//! A forkable zero-initialized device for prefix-shared workload execution.
//!
//! ACE suites re-execute enormous shared op prefixes (the seq-2 sweep runs
//! op 1 once per pair). The prefix cache keeps *live* mounted file systems
//! at each cached prefix depth and resumes workloads from them — which
//! requires cloning a mounted file system, and therefore cloning its
//! device, in (amortized) far less time than re-executing the prefix.
//!
//! [`ForkDevice`] makes `Clone` cheap with layered copy-on-write: the page
//! overlay is a stack of `Arc`-shared layers. A clone shares every layer;
//! the first write on either side after a clone notices the shared top
//! layer (strong count > 1) and pushes a fresh private layer to write into.
//! `Arc` (not `Rc`) so a forked checkpoint — and with it a whole
//! `PrefixCache` — can move across scheduler worker threads; ownership of a
//! device still stays with one thread at a time, so the single-owner write
//! path remains lock-free (`Arc::get_mut` on the uniquely held top layer).
//! Cloning an entry that is never written again is therefore O(depth), and
//! re-cloning the same cached entry many times — the prefix-cache hot path —
//! never copies page data at all.
//!
//! Reads probe layers top-down and fall through to zeros (devices start
//! zeroed, exactly like a fresh [`crate::PmDevice`]). Layer depth is bounded
//! by the number of clone points with intervening writes, i.e. the cached
//! prefix depth — single digits in practice.

use std::sync::Arc;

use crate::{backend::PmBackend, cost::SimCost, fxmap::FxHashMap};

/// Overlay page size.
const PAGE: u64 = 4096;

/// Writes flatten the layer stack once it grows past this depth. Long fork
/// *chains* (each cached workload forking from the previous one's
/// checkpoints, thousands of times over an ACE sweep) would otherwise make
/// every read walk an ever-growing stack.
const MAX_LAYERS: usize = 48;

/// A zero-initialized PM device with O(1)-amortized cloning.
///
/// Semantics match [`crate::CowDevice`]: all writes (cached stores and
/// non-temporal alike) apply directly; `flush`/`fence` are no-ops. The
/// harness only runs *crash-free* phases (oracle, record) on this device —
/// in-flight tracking for crash-state construction lives in the logging
/// wrapper, never here.
pub struct ForkDevice {
    len: u64,
    /// Overlay layers, oldest first. The last layer is written to when
    /// uniquely owned; a shared last layer is frozen by pushing a new one.
    layers: Vec<Arc<FxHashMap<u64, Box<[u8]>>>>,
}

impl ForkDevice {
    /// Creates a zeroed device of `len` bytes.
    pub fn new(len: u64) -> Self {
        ForkDevice { len, layers: Vec::new() }
    }

    /// Number of overlay layers (diagnostics; clones add at most one).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The full current image as a fresh vector. O(len).
    pub fn image(&self) -> Vec<u8> {
        let mut img = vec![0u8; self.len as usize];
        // Apply oldest layer first so newer pages win.
        for layer in &self.layers {
            for (&pno, page) in layer.iter() {
                let start = (pno * PAGE) as usize;
                let end = (start + PAGE as usize).min(img.len());
                img[start..end].copy_from_slice(&page[..end - start]);
            }
        }
        img
    }

    /// Reads the current content of page `pno` into an owned box.
    fn read_page(&self, pno: u64) -> Box<[u8]> {
        for layer in self.layers.iter().rev() {
            if let Some(p) = layer.get(&pno) {
                return p.clone();
            }
        }
        vec![0u8; PAGE as usize].into_boxed_slice()
    }

    fn page_mut(&mut self, pno: u64) -> &mut [u8] {
        let top_unique = self.layers.last().is_some_and(|l| Arc::strong_count(l) == 1);
        let top_has = top_unique && self.layers.last().expect("checked").contains_key(&pno);
        if !top_has {
            let content = self.read_page(pno);
            if !top_unique {
                self.layers.push(Arc::new(FxHashMap::default()));
            }
            let top = Arc::get_mut(self.layers.last_mut().expect("pushed")).expect("unique top");
            top.insert(pno, content);
        }
        Arc::get_mut(self.layers.last_mut().expect("present"))
            .expect("unique top")
            .get_mut(&pno)
            .expect("inserted")
    }

    /// Merges every layer into one privately-owned bottom layer.
    fn flatten(&mut self) {
        let mut merged: FxHashMap<u64, Box<[u8]>> = FxHashMap::default();
        for layer in &self.layers {
            for (&pno, page) in layer.iter() {
                merged.insert(pno, page.clone());
            }
        }
        self.layers = vec![Arc::new(merged)];
    }

    fn write_bytes(&mut self, off: u64, data: &[u8]) {
        if self.layers.len() >= MAX_LAYERS {
            self.flatten();
        }
        assert!(
            (off as usize).checked_add(data.len()).is_some_and(|e| e <= self.len as usize),
            "ForkDevice write out of range: off={off} len={}",
            data.len()
        );
        let mut pos = 0usize;
        while pos < data.len() {
            let cur = off + pos as u64;
            let pno = cur / PAGE;
            let in_page = (cur % PAGE) as usize;
            let n = (PAGE as usize - in_page).min(data.len() - pos);
            self.page_mut(pno)[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    fn read_bytes(&self, off: u64, buf: &mut [u8]) {
        assert!(
            (off as usize).checked_add(buf.len()).is_some_and(|e| e <= self.len as usize),
            "ForkDevice read out of range: off={off} len={}",
            buf.len()
        );
        let mut pos = 0usize;
        while pos < buf.len() {
            let cur = off + pos as u64;
            let pno = cur / PAGE;
            let in_page = (cur % PAGE) as usize;
            let n = (PAGE as usize - in_page).min(buf.len() - pos);
            let mut found = false;
            for layer in self.layers.iter().rev() {
                if let Some(p) = layer.get(&pno) {
                    buf[pos..pos + n].copy_from_slice(&p[in_page..in_page + n]);
                    found = true;
                    break;
                }
            }
            if !found {
                buf[pos..pos + n].fill(0);
            }
            pos += n;
        }
    }
}

impl Clone for ForkDevice {
    /// Shares every layer with `self`; both sides copy-on-write afterwards.
    fn clone(&self) -> Self {
        ForkDevice { len: self.len, layers: self.layers.clone() }
    }
}

impl PmBackend for ForkDevice {
    fn len(&self) -> u64 {
        self.len
    }

    fn read(&self, off: u64, buf: &mut [u8]) {
        self.read_bytes(off, buf);
    }

    fn store(&mut self, off: u64, data: &[u8]) {
        self.write_bytes(off, data);
    }

    fn memcpy_nt(&mut self, off: u64, data: &[u8]) {
        self.write_bytes(off, data);
    }

    fn memset_nt(&mut self, off: u64, val: u8, len: u64) {
        assert!(
            (off as usize).checked_add(len as usize).is_some_and(|e| e <= self.len as usize),
            "ForkDevice memset out of range: off={off} len={len}"
        );
        let buf = [val; PAGE as usize];
        let mut pos = 0u64;
        while pos < len {
            let n = (len - pos).min(PAGE) as usize;
            self.write_bytes(off + pos, &buf[..n]);
            pos += n as u64;
        }
    }

    fn flush(&mut self, _off: u64, _len: u64) {}

    fn fence(&mut self) {}

    fn sim_cost(&self) -> SimCost {
        SimCost::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed_and_round_trips() {
        let mut d = ForkDevice::new(16384);
        let mut b = [1u8; 64];
        d.read(8000, &mut b);
        assert_eq!(b, [0u8; 64]);
        d.store(8000, &[7u8; 64]);
        d.read(8000, &mut b);
        assert_eq!(b, [7u8; 64]);
    }

    #[test]
    fn clones_diverge_independently() {
        let mut a = ForkDevice::new(8192);
        a.store(0, &[1u8; 16]);
        let mut b = a.clone();
        b.store(0, &[2u8; 16]);
        a.store(4096, &[3u8; 16]);
        let mut buf = [0u8; 16];
        a.read(0, &mut buf);
        assert_eq!(buf, [1u8; 16], "clone's write invisible to original");
        b.read(0, &mut buf);
        assert_eq!(buf, [2u8; 16]);
        b.read(4096, &mut buf);
        assert_eq!(buf, [0u8; 16], "original's later write invisible to clone");
    }

    #[test]
    fn repeated_clones_of_a_frozen_entry_add_no_layers() {
        let mut a = ForkDevice::new(8192);
        a.store(0, &[1u8; 16]);
        let b = a.clone();
        let c = a.clone();
        let d = a.clone();
        assert_eq!(b.depth(), 1);
        assert_eq!(c.depth(), 1);
        assert_eq!(d.depth(), 1);
        // Only a side that writes pushes a layer.
        let mut e = a.clone();
        e.store(64, &[5u8; 8]);
        assert_eq!(e.depth(), 2);
        assert_eq!(a.depth(), 1);
    }

    #[test]
    fn cross_page_writes_and_partial_overwrite_in_layers() {
        let mut a = ForkDevice::new(3 * 4096);
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        a.memcpy_nt(3000, &data);
        let b = a.clone();
        let mut c = b.clone();
        c.store(4000, &[0xee; 2000]);
        let mut got = vec![0u8; 5000];
        c.read(3000, &mut got);
        let mut want = data.clone();
        want[1000..3000].fill(0xee);
        assert_eq!(got, want);
        a.read(3000, &mut got);
        assert_eq!(got, data);
    }

    #[test]
    fn image_matches_reads() {
        let mut a = ForkDevice::new(8192);
        a.store(100, &[9u8; 300]);
        let b = a.clone();
        let mut c = b.clone();
        c.memset_nt(4000, 4, 200);
        let img = c.image();
        let mut buf = vec![0u8; 8192];
        c.read(0, &mut buf);
        assert_eq!(img, buf);
    }

    #[test]
    fn memset_unaligned_tail() {
        let mut d = ForkDevice::new(4096 * 2);
        d.memset_nt(4090, 3, 12);
        let mut b = [0u8; 12];
        d.read(4090, &mut b);
        assert_eq!(b, [3u8; 12]);
    }
}
