//! Deterministic simulated-time cost model for PM operations.
//!
//! The paper's performance observations (§5.1, Observation 2) compare NOVA
//! before and after bug fixes on real Optane hardware. We cannot measure
//! Optane, so [`PmDevice`](crate::PmDevice) charges each persistence
//! operation a latency drawn from published Optane characterization numbers
//! (Yang et al., FAST '20; Izraelevitz et al. 2019). The absolute values are
//! approximations; what matters for reproducing the paper's *shape* results
//! is the relative cost of journaled versus in-place update sequences, which
//! is dominated by the counts of flushes, fences, and media reads — exactly
//! what this model accounts.
//!
//! # Calibration
//!
//! `cargo run --release -p bench --example fuel_calibrate` re-measures, on
//! the current host, the wall-clock cost of each primitive below and of one
//! *fuel unit* (the deterministic watchdog's currency, [`op_units`]), and
//! prints the scale factor between simulated and host time. Each constant's
//! doc records both its published-Optane source and the host-measured
//! figure from the 2026-08 calibration run (AMD EPYC container, release
//! build) so future re-runs have a baseline to diff against. The simulated
//! constants are *not* adjusted to the host — they model Optane, and only
//! their ratios matter — but the fuel budget is sanity-checked against wall
//! time: at the measured ~12 ns of host wall per fuel unit (store+flush+
//! fence mix on `CowDevice`), the default 50 M-unit recovery budget
//! (`chipmunk::config::DEFAULT_RECOVERY_FUEL`) bounds a hung recovery at
//! roughly 0.6 s of host time per crash state, slow enough to never fire
//! on a healthy walk and fast enough that a sweep over thousands of
//! hanging states still terminates.

/// Latency charged per cache line written back (`clwb` + eventual write).
/// Optane: ~62 ns effective per line under write-back streams (Yang et al.,
/// FAST '20). Host 2026-08: simulating store(64B)+flush costs ~160 ns wall
/// (dominated by line-capture bookkeeping, sim charge 71 ns).
pub const FLUSH_LINE_NS: u64 = 62;

/// Latency charged per cache line issued as a non-temporal store.
/// Optane: ~55 ns per 64 B `movnt` line (Izraelevitz et al. 2019). Host
/// 2026-08: simulating one nt line costs ~80 ns wall.
pub const NT_LINE_NS: u64 = 55;

/// Latency charged per store fence (drain of the write-pending queue).
/// Optane: `sfence` + WPQ drain ~100-200 ns depending on queue depth (Yang
/// et al., FAST '20); 160 ns sits mid-range. Host 2026-08: simulating a
/// fence costs ~10 ns wall (empty queue).
pub const FENCE_NS: u64 = 160;

/// Latency charged per cached store word (hits the cache; cheap).
/// DRAM-cached store, ~1 ns/word on any modern core; the value only needs
/// to be small relative to the persistence ops above.
pub const STORE_WORD_NS: u64 = 1;

/// Latency charged per cache line of an explicit media read (a read that
/// semantically must come from PM, e.g. read-validate before an in-place
/// update). Optane: ~170 ns idle random 64 B read latency (Izraelevitz et
/// al. 2019). Host 2026-08: simulating one media-read line costs ~7 ns wall.
pub const MEDIA_READ_LINE_NS: u64 = 170;

use std::cell::Cell;

/// Accumulated simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimCost {
    /// Total simulated nanoseconds.
    pub ns: u64,
}

impl SimCost {
    /// Adds `ns` nanoseconds of simulated time.
    pub fn charge(&mut self, ns: u64) {
        self.ns = self.ns.saturating_add(ns);
    }
}

/// Operation counters maintained by the simulated device.
///
/// These drive both the cost model and the paper's §4.3/§5.1 measurement
/// harnesses (in-flight write distribution, crash-state counts).
#[derive(Debug, Clone, Copy, Default)]
pub struct PmStats {
    /// Bytes written via plain cached stores.
    pub store_bytes: u64,
    /// Bytes written via non-temporal stores.
    pub nt_bytes: u64,
    /// Cache lines written back by `flush`.
    pub flush_lines: u64,
    /// Number of `flush` calls.
    pub flush_calls: u64,
    /// Number of store fences.
    pub fences: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes of explicit media reads.
    pub media_read_bytes: u64,
    /// Maximum number of in-flight writes observed at any fence.
    pub max_inflight: u64,
}

// ---------------------------------------------------------------------------
// Deterministic fuel watchdog.
//
// Chipmunk runs the target file system's recovery *in process*, so a recovery
// loop that never terminates would hang the whole sweep. A wall-clock timeout
// would break the bit-identical determinism the harness guarantees across
// thread counts; instead the checker arms a *fuel* budget denominated in
// simulated device operations (the same unit the cost model accounts), and
// every metered device op burns fuel. Exhaustion raises a typed panic that
// the `core::sandbox` layer converts into `Violation::RecoveryHang`.
//
// Fuel is thread-local: each crash-state check runs start-to-finish on one
// thread, so the accounting is a pure function of the crash-state image and
// the check configuration — identical at any thread count.

thread_local! {
    static FUEL: Cell<Option<u64>> = const { Cell::new(None) };
    static FUEL_BUDGET: Cell<u64> = const { Cell::new(0) };
}

/// Panic payload raised by [`tick`] when the armed fuel budget runs out.
///
/// Carried through `std::panic::panic_any`; the sandbox layer downcasts it to
/// distinguish a simulated hang from an ordinary panic.
#[derive(Debug, Clone, Copy)]
pub struct FuelExhausted {
    /// The budget that was armed when exhaustion hit.
    pub budget: u64,
}

/// RAII guard arming the calling thread's fuel budget.
///
/// Restores the previously armed budget (usually none) on drop — including
/// during the unwind triggered by exhaustion itself — so fuel never leaks
/// into unrelated work on the same thread.
pub struct FuelGuard {
    prev: Option<u64>,
    prev_budget: u64,
}

impl FuelGuard {
    /// Arms `budget` simulated ops of fuel on this thread; `None` leaves the
    /// watchdog disarmed (the guard is then a no-op).
    pub fn arm(budget: Option<u64>) -> FuelGuard {
        let prev = FUEL.with(Cell::get);
        let prev_budget = FUEL_BUDGET.with(Cell::get);
        if let Some(b) = budget {
            FUEL.with(|f| f.set(Some(b)));
            FUEL_BUDGET.with(|f| f.set(b));
        }
        FuelGuard { prev, prev_budget }
    }
}

impl Drop for FuelGuard {
    fn drop(&mut self) {
        FUEL.with(|f| f.set(self.prev));
        FUEL_BUDGET.with(|f| f.set(self.prev_budget));
    }
}

/// Whether a fuel budget is currently armed on this thread.
pub fn fuel_armed() -> bool {
    FUEL.with(Cell::get).is_some()
}

/// Fuel remaining on this thread's armed budget, or `None` when disarmed.
/// `budget - fuel_remaining()` measures the units a region consumed — the
/// calibration example uses exactly that to price one unit in wall time.
pub fn fuel_remaining() -> Option<u64> {
    FUEL.with(Cell::get)
}

/// Fuel units charged for one device op touching `len` bytes: one unit per
/// op plus one per cache line moved, mirroring the latency model above.
#[inline]
pub fn op_units(len: usize) -> u64 {
    1 + (len as u64 >> 6)
}

/// Burns `units` of fuel if a budget is armed; raises [`FuelExhausted`] (via
/// `panic_any`) when the budget runs dry. A no-op on disarmed threads.
#[inline]
pub fn tick(units: u64) {
    FUEL.with(|f| {
        if let Some(rem) = f.get() {
            if rem < units {
                f.set(Some(0));
                let budget = FUEL_BUDGET.with(Cell::get);
                std::panic::panic_any(FuelExhausted { budget });
            }
            f.set(Some(rem - units));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_saturates() {
        let mut c = SimCost::default();
        c.charge(10);
        c.charge(5);
        assert_eq!(c.ns, 15);
        c.charge(u64::MAX);
        assert_eq!(c.ns, u64::MAX);
    }

    #[test]
    fn tick_without_fuel_is_a_noop() {
        assert!(!fuel_armed());
        tick(u64::MAX); // must not panic
    }

    #[test]
    fn fuel_guard_arms_restores_and_nests() {
        {
            let _g = FuelGuard::arm(Some(100));
            assert!(fuel_armed());
            tick(40);
            {
                let _inner = FuelGuard::arm(Some(7));
                tick(5);
            }
            // Inner guard restored the outer budget's remaining fuel.
            tick(60); // 40 + 60 = 100: exactly exhausts, does not exceed
        }
        assert!(!fuel_armed());
    }

    #[test]
    fn exhaustion_raises_fuel_exhausted_and_disarms() {
        let caught = std::panic::catch_unwind(|| {
            let _g = FuelGuard::arm(Some(10));
            tick(11);
        })
        .expect_err("fuel must run out");
        let fe = caught.downcast_ref::<FuelExhausted>().expect("typed payload");
        assert_eq!(fe.budget, 10);
        assert!(!fuel_armed(), "guard drop during unwind disarms the thread");
    }

    #[test]
    fn op_units_charges_per_line() {
        assert_eq!(op_units(0), 1);
        assert_eq!(op_units(63), 1);
        assert_eq!(op_units(64), 2);
        assert_eq!(op_units(4096), 65);
    }
}
