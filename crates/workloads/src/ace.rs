//! The Automatic Crash Explorer (ACE), adapted for PM file systems.
//!
//! ACE systematically generates every workload of a given length ("seq-n")
//! over a small predetermined file set, then satisfies dependencies by
//! prepending the creations the core operations need (§3.4.1). Two modes
//! mirror the paper:
//!
//! * **strong** (PM file systems): no fsync-family calls — the systems are
//!   synchronous. 56 seq-1 workloads, 56² = 3136 seq-2 workloads, and
//!   37³ = 50,653 seq-3 "metadata" workloads (the paper reports 50,650 —
//!   its exact pruning rules are unspecified; the three-workload delta is
//!   recorded in EXPERIMENTS.md).
//! * **weak** (ext4-DAX): every workload carries at least one fsync-family
//!   call, since crash points only exist there.

use vfs::{FallocMode, Op, Workload};

/// Which crash-consistency regime the generated workloads target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AceMode {
    /// Strong guarantees: no fsync inserted.
    Strong,
    /// Weak guarantees: fsync/sync inserted so crash points exist.
    Weak,
}

/// The regular files of the ACE file set.
pub const FILES: [&str; 4] = ["/foo", "/bar", "/A/foo", "/A/bar"];

/// The directories of the ACE file set.
pub const DIRS: [&str; 3] = ["/A", "/B", "/A/C"];

/// Write variants: (path, offset, size). Offsets and sizes are 8-byte
/// aligned in value but deliberately include non-cache-line-multiple sizes
/// (1000, 5000) — the paper's bugs 17/18 need them. Non-8-byte-aligned
/// sizes are out of ACE's vocabulary (the fuzzer's job, Observation 6).
fn write_variants() -> Vec<Op> {
    let mut v = Vec::new();
    for (path, ranges) in [
        ("/foo", &[(0u64, 1000u64), (0, 4096), (2048, 4096), (4096, 5000), (8192, 1000)][..]),
        ("/A/foo", &[(0, 1000), (0, 4096), (2048, 4096), (4096, 5000)][..]),
    ] {
        for &(off, size) in ranges {
            v.push(Op::WritePath { path: path.into(), off, size });
        }
    }
    v
}

fn link_variants() -> Vec<Op> {
    let mut v = Vec::new();
    for old in FILES {
        for new in FILES {
            if old != new {
                v.push(Op::Link { old: old.into(), new: new.into() });
            }
        }
    }
    v
}

fn rename_variants() -> Vec<Op> {
    let mut v = Vec::new();
    for old in FILES {
        for new in FILES {
            if old != new {
                v.push(Op::Rename { old: old.into(), new: new.into() });
            }
        }
    }
    v
}

fn unlink_variants() -> Vec<Op> {
    FILES.iter().map(|f| Op::Unlink { path: (*f).into() }).collect()
}

/// The 56 core operations of the strong-mode seq-1 space.
pub fn core_ops_strong() -> Vec<Op> {
    let mut ops: Vec<Op> = Vec::new();
    // creat × 4
    ops.extend(FILES.iter().map(|f| Op::Creat { path: (*f).into() }));
    // mkdir × 3
    ops.extend(DIRS.iter().map(|d| Op::Mkdir { path: (*d).into() }));
    // fallocate × 6
    for mode in FallocMode::ALL {
        ops.push(Op::FallocPath { path: "/foo".into(), mode, off: 0, len: 8192 });
    }
    for mode in [FallocMode::Allocate, FallocMode::ZeroRange] {
        ops.push(Op::FallocPath { path: "/A/foo".into(), mode, off: 0, len: 8192 });
    }
    // write × 9
    ops.extend(write_variants());
    // link × 12
    ops.extend(link_variants());
    // unlink × 4
    ops.extend(unlink_variants());
    // remove × 1
    ops.push(Op::Remove { path: "/A".into() });
    // rename × 12
    ops.extend(rename_variants());
    // truncate × 2
    ops.push(Op::Truncate { path: "/foo".into(), size: 0 });
    ops.push(Op::Truncate { path: "/foo".into(), size: 2500 });
    // rmdir × 3
    ops.extend(DIRS.iter().map(|d| Op::Rmdir { path: (*d).into() }));
    ops
}

/// The 37 metadata operations of the seq-3 space (pwrite, link, unlink,
/// rename only — §3.4.1).
pub fn core_ops_metadata() -> Vec<Op> {
    let mut ops = write_variants();
    ops.extend(link_variants());
    ops.extend(unlink_variants());
    ops.extend(rename_variants());
    ops
}

/// The weak-mode core space: the strong ops plus the xattr calls the paper
/// adds for ext4-DAX/XFS-DAX.
pub fn core_ops_weak() -> Vec<Op> {
    let mut ops = core_ops_strong();
    for f in ["/foo", "/bar"] {
        ops.push(Op::SetXattr { path: f.into(), name: "user.k".into(), value: b"v".to_vec() });
        ops.push(Op::RemoveXattr { path: f.into(), name: "user.k".into() });
    }
    ops
}

/// Prepends the operations a core-op sequence depends on: parent
/// directories, then source files. Matches ACE's dependency satisfaction.
pub fn satisfy_dependencies(core: &[Op]) -> Vec<Op> {
    let mut setup: Vec<Op> = Vec::new();
    let have_dir = |setup: &mut Vec<Op>, path: &str| {
        // Create ancestors in order.
        for d in DIRS {
            if (path.starts_with(&format!("{d}/")) || path == d)
                && !setup.iter().any(|o| matches!(o, Op::Mkdir { path: p } if p == d))
            {
                setup.push(Op::Mkdir { path: d.into() });
            }
        }
    };
    let have_file = |setup: &mut Vec<Op>, path: &str| {
        if !setup.iter().any(|o| matches!(o, Op::Creat { path: p } if p == path)) {
            setup.push(Op::Creat { path: path.into() });
        }
    };
    for op in core {
        match op {
            Op::Creat { path } => {
                have_dir(&mut setup, path);
            }
            Op::WritePath { path, .. } | Op::FallocPath { path, .. } => {
                // pwrite/fallocate operate on an open descriptor of an
                // existing file: ACE satisfies the dependency with a creat.
                have_dir(&mut setup, path);
                have_file(&mut setup, path);
            }
            Op::Mkdir { path } => {
                // Only ancestors, not the target.
                for d in DIRS {
                    if path.starts_with(&format!("{d}/"))
                        && !setup.iter().any(|o| matches!(o, Op::Mkdir { path: p } if p == d))
                    {
                        setup.push(Op::Mkdir { path: d.into() });
                    }
                }
            }
            Op::Rmdir { path } | Op::Remove { path } if DIRS.contains(&path.as_str()) => {
                have_dir(&mut setup, path);
                if !setup.iter().any(|o| matches!(o, Op::Mkdir { path: p } if p == path)) {
                    setup.push(Op::Mkdir { path: path.clone() });
                }
            }
            Op::Unlink { path } | Op::Truncate { path, .. } | Op::Remove { path } => {
                have_dir(&mut setup, path);
                have_file(&mut setup, path);
            }
            Op::Link { old, new } | Op::Rename { old, new } => {
                have_dir(&mut setup, old);
                have_dir(&mut setup, new);
                have_file(&mut setup, old);
            }
            _ => {}
        }
    }
    // Deduplicate mkdir of the same dir emitted twice and drop setup ops
    // that the core sequence itself performs first.
    let mut out: Vec<Op> = Vec::new();
    for s in setup {
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out.extend(core.iter().cloned());
    out
}

/// Appends the weak-mode persistence suffix: fsync of the op's target (when
/// it still exists) or a full sync, ensuring at least one crash point.
fn weak_suffix(core: &[Op], variant: usize) -> Vec<Op> {
    let mut ops = core.to_vec();
    match variant {
        0 => ops.push(Op::Sync),
        _ => {
            // fsync the last touched file if identifiable, else sync.
            let target = core.iter().rev().find_map(|o| match o {
                Op::Creat { path }
                | Op::WritePath { path, .. }
                | Op::Truncate { path, .. }
                | Op::FallocPath { path, .. } => Some(path.clone()),
                Op::Rename { new, .. } | Op::Link { new, .. } => Some(new.clone()),
                _ => None,
            });
            match target {
                Some(path) => ops.push(Op::FsyncPath { path }),
                None => ops.push(Op::Sync),
            }
        }
    }
    ops
}

/// All seq-1 workloads for `mode`.
pub fn seq1(mode: AceMode) -> Vec<Workload> {
    match mode {
        AceMode::Strong => core_ops_strong()
            .into_iter()
            .enumerate()
            .map(|(i, op)| Workload::new(format!("seq1-{i:03}"), satisfy_dependencies(&[op])))
            .collect(),
        AceMode::Weak => {
            let mut out = Vec::new();
            for (i, op) in core_ops_weak().into_iter().enumerate() {
                for v in 0..2 {
                    let core = [op.clone()];
                    let with_deps = satisfy_dependencies(&core);
                    out.push(Workload::new(
                        format!("seq1w-{i:03}-{v}"),
                        weak_suffix(&with_deps, v),
                    ));
                }
            }
            out
        }
    }
}

/// All seq-2 workloads for `mode`, generated lazily (3136 strong).
pub fn seq2(mode: AceMode) -> impl Iterator<Item = Workload> {
    let core = match mode {
        AceMode::Strong => core_ops_strong(),
        AceMode::Weak => core_ops_weak(),
    };
    let n = core.len();
    (0..n * n).map(move |k| {
        let (i, j) = (k / n, k % n);
        let pair = [core[i].clone(), core[j].clone()];
        let ops = satisfy_dependencies(&pair);
        let ops = if mode == AceMode::Weak { weak_suffix(&ops, 1) } else { ops };
        Workload::new(format!("seq2-{i:03}x{j:03}"), ops)
    })
}

/// All seq-3 metadata workloads (strong mode only), generated lazily
/// (37³ = 50,653).
pub fn seq3_metadata() -> impl Iterator<Item = Workload> {
    let core = core_ops_metadata();
    let n = core.len();
    (0..n * n * n).map(move |k| {
        let (i, j, l) = (k / (n * n), (k / n) % n, k % n);
        let triple = [core[i].clone(), core[j].clone(), core[l].clone()];
        Workload::new(
            format!("seq3-{i:02}x{j:02}x{l:02}"),
            satisfy_dependencies(&triple),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_seq1_space_is_exactly_56() {
        // §3.4.1: "we generate 56 seq-1 tests".
        assert_eq!(core_ops_strong().len(), 56);
        assert_eq!(seq1(AceMode::Strong).len(), 56);
    }

    #[test]
    fn strong_seq2_space_is_exactly_3136() {
        // §3.4.1: "3136 seq-2 tests" = 56².
        assert_eq!(seq2(AceMode::Strong).count(), 3136);
    }

    #[test]
    fn seq3_metadata_space_matches_paper_within_pruning() {
        // §3.4.1 reports 50,650; the enumerated space here is 37³ = 50,653.
        assert_eq!(core_ops_metadata().len(), 37);
        assert_eq!(37usize.pow(3), 50_653);
    }

    #[test]
    fn metadata_ops_only_use_the_four_kinds() {
        use vfs::fs::SyscallKind;
        for op in core_ops_metadata() {
            assert!(matches!(
                op.kind(),
                SyscallKind::Pwrite | SyscallKind::Link | SyscallKind::Unlink | SyscallKind::Rename
            ));
        }
    }

    #[test]
    fn dependencies_make_workloads_runnable() {
        use vfs::model::ModelFs;
        use vfs::FsError;
        // Every strong seq-1 workload must run without ENOENT on a fresh
        // file system (EEXIST from a creat-after-setup is acceptable ACE
        // behaviour; missing dependencies are not).
        for w in seq1(AceMode::Strong) {
            let mut fs = ModelFs::new();
            let mut ex = chipmunk::exec::Executor::new();
            for (i, op) in w.ops.iter().enumerate() {
                let r = ex.exec(&mut fs, op, i);
                assert!(
                    !matches!(r.result, Err(FsError::NotFound)),
                    "{}: {op:?} hit ENOENT",
                    w.name
                );
            }
        }
    }

    #[test]
    fn weak_workloads_always_have_a_persistence_point() {
        for w in seq1(AceMode::Weak) {
            assert!(
                w.ops
                    .iter()
                    .any(|o| matches!(o, Op::Sync | Op::FsyncPath { .. } | Op::Fsync { .. })),
                "{} has no fsync/sync",
                w.name
            );
        }
    }

    #[test]
    fn seq2_sample_has_deps_of_both_ops() {
        // unlink(/A/foo) ; rename(/bar, /foo): needs /A, /A/foo, /bar.
        let w = seq2(AceMode::Strong)
            .find(|w| w.name == "seq2-031x045")
            .or_else(|| seq2(AceMode::Strong).nth(100))
            .unwrap();
        // Just verify it runs cleanly on the model.
        let mut fs = vfs::model::ModelFs::new();
        let mut ex = chipmunk::exec::Executor::new();
        for (i, op) in w.ops.iter().enumerate() {
            let _ = ex.exec(&mut fs, op, i);
        }
    }
}
