//! `option::of` — optional values.

use rand::Rng;

use crate::{strategy::Strategy, test_runner::TestRng};

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Upstream defaults to None 1 time in 4.
        if rng.rng().gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some` of the inner strategy's values, or `None` a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
