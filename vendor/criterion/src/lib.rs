//! Offline shim for the `criterion` surface used by `bench/benches`.
//!
//! Runs each benchmark closure `sample_size` times after one warm-up and
//! prints mean and min wall time. No statistics, plotting, or baselines —
//! just enough to keep `cargo bench` working without registry access.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), param) }
    }
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    mean: Duration,
    min: Duration,
}

impl Bencher {
    /// Runs `f` once to warm up, then `samples` timed times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std_black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            std_black_box(f());
            let d = t.elapsed();
            total += d;
            min = min.min(d);
        }
        self.mean = total / self.samples as u32;
        self.min = min;
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { samples: self.samples, mean: Duration::ZERO, min: Duration::ZERO };
        f(&mut b);
        println!(
            "{}/{:<40} mean {:>12.3?}   min {:>12.3?}   ({} samples)",
            self.name, id, b.mean, b.min, self.samples
        );
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.id.clone();
        self.run(&name, |b| f(b, input));
        self
    }

    /// Ends the group (printing already happened per-bench).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _c: self }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }
}
