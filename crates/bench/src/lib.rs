#![warn(missing_docs)]

//! Shared machinery for the evaluation harnesses (one binary per paper
//! table/figure — see DESIGN.md §4 for the index).

use std::{
    collections::HashSet,
    time::{Duration, Instant},
};

use chipmunk::{test_workload, BugReport, TestConfig, TestOutcome};
use ext4dax::Ext4DaxKind;
use novafs::NovaKind;
use pmfs::PmfsKind;
use splitfs::SplitFsKind;
use vfs::{
    fs::{FsKind, FsOptions},
    BugId, BugSet, Cov, FsName, Workload,
};
use winefs::WineFsKind;
use xfsdax::XfsDaxKind;
use workloads::{
    ace::{seq1, seq2, seq3_metadata, AceMode},
    fuzz::{FuzzConfig, Fuzzer},
};

/// Rank-2 helper: run a generic closure against the `FsKind` for a given
/// file system (the kinds are distinct types, so plain closures cannot be
/// generic over them).
pub trait WithKind {
    /// The result type.
    type Out;
    /// Invoked with the concrete kind.
    fn call<K: FsKind>(self, kind: K) -> Self::Out;
}

/// Dispatches `w` to the concrete [`FsKind`] for `fs` built from `opts`.
pub fn dispatch<W: WithKind>(fs: FsName, opts: FsOptions, w: W) -> W::Out {
    match fs {
        FsName::Nova => w.call(NovaKind { opts, fortis: false }),
        FsName::NovaFortis => w.call(NovaKind { opts, fortis: true }),
        FsName::Pmfs => w.call(PmfsKind { opts }),
        FsName::WineFs => w.call(WineFsKind { opts, strict: true }),
        FsName::SplitFs => w.call(SplitFsKind { opts }),
        FsName::Ext4Dax => w.call(Ext4DaxKind { opts }),
        FsName::XfsDax => w.call(XfsDaxKind { opts }),
    }
}

/// The ACE mode appropriate for a file system.
pub fn mode_for(fs: FsName) -> AceMode {
    if matches!(fs, FsName::Ext4Dax | FsName::XfsDax) {
        AceMode::Weak
    } else {
        AceMode::Strong
    }
}

/// Runs a batch of workloads through [`test_workload`] across
/// `cfg.threads` workers, returning `(outcome, per-workload coverage)`
/// pairs **in batch order** — byte-identical to what a serial loop over the
/// same batch would produce.
///
/// Each workload is tested on a factory clone carrying fresh
/// coverage/trace sinks ([`FsOptions::with_fresh_sinks`]), so workers never
/// race on shared instrumentation. Afterwards each workload's sinks are
/// absorbed into `kind`'s shared sinks in batch order and its
/// `traced_bugs` is re-snapshotted from the shared trace — reproducing
/// exactly the cumulative semantics of a serial run on a shared sink.
pub fn run_batch<K: FsKind>(
    kind: &K,
    batch: &[Workload],
    cfg: &TestConfig,
) -> Vec<(TestOutcome, HashSet<u64>)> {
    let threads = cfg.threads.max(1);
    let run_one = |w: &Workload| {
        let fresh = kind.with_options(kind.options().with_fresh_sinks());
        let out = test_workload(&fresh, w, cfg);
        let cov = fresh.options().cov.snapshot();
        let trace = fresh.options().trace.snapshot();
        (out, cov, trace)
    };

    let mut slots: Vec<Option<(TestOutcome, HashSet<u64>, _)>> = Vec::with_capacity(batch.len());
    slots.resize_with(batch.len(), || None);
    if threads <= 1 || batch.len() <= 1 {
        for (i, w) in batch.iter().enumerate() {
            slots[i] = Some(run_one(w));
        }
    } else {
        let per = batch.len().div_ceil(threads);
        let run_one = &run_one;
        std::thread::scope(|sc| {
            let handles: Vec<_> = batch
                .chunks(per)
                .enumerate()
                .map(|(c, shard)| {
                    sc.spawn(move || {
                        shard
                            .iter()
                            .enumerate()
                            .map(|(j, w)| (c * per + j, run_one(w)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("workload worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
    }

    slots
        .into_iter()
        .map(|slot| {
            let (mut out, cov, trace) = slot.expect("every batch slot filled");
            kind.options().cov.absorb(&cov);
            kind.options().trace.absorb(&trace);
            out.traced_bugs = kind.options().trace.snapshot();
            (out, cov)
        })
        .collect()
}

/// Result of hunting one bug with one frontend.
#[derive(Debug, Clone)]
pub struct HuntResult {
    /// CPU time until the first violation.
    pub elapsed: Duration,
    /// Workloads executed until then.
    pub workloads: u64,
    /// Crash states checked until then.
    pub states: u64,
    /// The first report's violation class.
    pub class: String,
    /// The first report's one-line description.
    pub detail: String,
    /// Whether the injected bug's code path was traced during the finding
    /// run (ground-truth attribution).
    pub traced: bool,
    /// Crash states served from the dedup cache until the find.
    pub dedup_hits: u64,
}

struct AceHunt<'a> {
    bug: BugId,
    cfg: &'a TestConfig,
    max_seq3: usize,
}

impl WithKind for AceHunt<'_> {
    type Out = (Option<HuntResult>, u64, u64);

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        let start = Instant::now();
        let mode = mode_for(kind.name());
        let mut workloads = 0u64;
        let mut states = 0u64;
        let mut dedup = 0u64;
        let seq3: Box<dyn Iterator<Item = Workload>> = if mode == AceMode::Strong {
            Box::new(seq3_metadata().step_by(37).take(self.max_seq3))
        } else {
            Box::new(std::iter::empty())
        };
        let mut stream = seq1(mode).into_iter().chain(seq2(mode)).chain(seq3);
        // The ACE stream is a pure iterator (no feedback), so the batch size
        // may scale with the worker count without affecting which workload
        // wins: the walk below commits counters in stream order and stops at
        // the first report, discarding speculative results past it.
        let threads = self.cfg.threads.max(1);
        let batch_len = if threads <= 1 { 1 } else { threads * 2 };
        loop {
            let batch: Vec<Workload> = stream.by_ref().take(batch_len).collect();
            if batch.is_empty() {
                return (None, workloads, states);
            }
            for (out, _cov) in run_batch(&kind, &batch, self.cfg) {
                workloads += 1;
                states += out.crash_states;
                dedup += out.dedup_hits;
                if let Some(r) = out.reports.first() {
                    return (
                        Some(HuntResult {
                            elapsed: start.elapsed(),
                            workloads,
                            states,
                            class: r.violation.class().to_string(),
                            detail: format!("{} @ {}", r.op_desc, r.violation.detail()),
                            traced: out.traced_bugs.contains(&self.bug),
                            dedup_hits: dedup,
                        }),
                        workloads,
                        states,
                    );
                }
            }
        }
    }
}

/// Hunts `bug` (enabled in isolation) with the ACE frontend: seq-1, then
/// seq-2, then a deterministic sample of seq-3-metadata. Returns the find
/// (if any) plus total workloads and crash states examined.
pub fn hunt_with_ace(bug: BugId, cfg: &TestConfig, max_seq3: usize) -> (Option<HuntResult>, u64, u64) {
    let opts = FsOptions::with_bugs(BugSet::only(&[bug]));
    dispatch(bug.info().fs, opts, AceHunt { bug, cfg, max_seq3 })
}

struct FuzzHunt<'a> {
    bug: BugId,
    cfg: &'a TestConfig,
    seed: u64,
    budget: u64,
}

/// Fuzzer batch size. The fuzzer is *batch-synchronous*: it generates this
/// many workloads up front, tests them (possibly in parallel), then applies
/// coverage feedback in generation order before generating the next batch.
/// Fixed — never derived from the thread count — so the generation
/// trajectory is identical for every `TestConfig::threads` value.
const FUZZ_BATCH: usize = 8;

impl WithKind for FuzzHunt<'_> {
    type Out = (Option<HuntResult>, u64, u64);

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        let start = Instant::now();
        let mut fuzzer = Fuzzer::new(self.seed, FuzzConfig::default());
        let mut seen = std::collections::HashSet::new();
        let mut states = 0u64;
        let mut dedup = 0u64;
        let mut done = 0u64;
        while done < self.budget {
            let n = FUZZ_BATCH.min((self.budget - done) as usize);
            let batch: Vec<Workload> = (0..n).map(|_| fuzzer.next_workload()).collect();
            let results = run_batch(&kind, &batch, self.cfg);
            for (w, (out, cov)) in batch.iter().zip(results) {
                done += 1;
                states += out.crash_states;
                dedup += out.dedup_hits;
                let mut new = 0;
                for &h in &cov {
                    if seen.insert(h) {
                        new += 1;
                    }
                }
                fuzzer.feedback(w, new);
                if let Some(r) = out.reports.first() {
                    return (
                        Some(HuntResult {
                            elapsed: start.elapsed(),
                            workloads: done,
                            states,
                            class: r.violation.class().to_string(),
                            detail: format!("{} @ {}", r.op_desc, r.violation.detail()),
                            traced: out.traced_bugs.contains(&self.bug),
                            dedup_hits: dedup,
                        }),
                        done,
                        states,
                    );
                }
            }
        }
        (None, self.budget, states)
    }
}

/// Hunts `bug` (enabled in isolation) with the fuzzer frontend under the
/// paper's fuzzing configuration (crash-state cap of two, early exit).
pub fn hunt_with_fuzzer(
    bug: BugId,
    cfg: &TestConfig,
    seed: u64,
    budget: u64,
) -> (Option<HuntResult>, u64, u64) {
    let opts = FsOptions {
        bugs: BugSet::only(&[bug]),
        cov: Cov::enabled(),
        ..Default::default()
    };
    dispatch(bug.info().fs, opts, FuzzHunt { bug, cfg, seed, budget })
}

struct SuiteRun<'a> {
    workloads: Vec<Workload>,
    cfg: &'a TestConfig,
}

/// Aggregate counters from running a suite.
#[derive(Debug, Default, Clone)]
pub struct SuiteStats {
    /// Workloads executed.
    pub workloads: u64,
    /// Crash points visited.
    pub crash_points: u64,
    /// Crash states checked.
    pub crash_states: u64,
    /// Violations reported.
    pub reports: u64,
    /// Crash states served from the dedup cache.
    pub dedup_hits: u64,
    /// Every violation report, in workload order (determinism witnesses
    /// compare these across thread counts).
    pub bug_reports: Vec<BugReport>,
    /// In-flight write counts at each crash point.
    pub inflight: Vec<usize>,
    /// Wall time.
    pub elapsed: Duration,
}

impl WithKind for SuiteRun<'_> {
    type Out = SuiteStats;

    fn call<K: FsKind>(self, kind: K) -> SuiteStats {
        let start = Instant::now();
        let mut s = SuiteStats::default();
        let threads = self.cfg.threads.max(1);
        let chunk = if threads <= 1 { self.workloads.len() } else { threads * 2 }.max(1);
        for batch in self.workloads.chunks(chunk) {
            for (out, _cov) in run_batch(&kind, batch, self.cfg) {
                s.workloads += 1;
                s.crash_points += out.crash_points;
                s.crash_states += out.crash_states;
                s.dedup_hits += out.dedup_hits;
                s.reports += out.reports.len() as u64;
                s.bug_reports.extend(out.reports);
                s.inflight.extend(out.inflight_sizes);
            }
        }
        s.elapsed = start.elapsed();
        s
    }
}

/// Runs a workload suite on `fs` with the given bug set, returning
/// aggregate statistics.
pub fn run_suite(
    fs: FsName,
    bugs: BugSet,
    workloads: Vec<Workload>,
    cfg: &TestConfig,
) -> SuiteStats {
    dispatch(fs, FsOptions::with_bugs(bugs), SuiteRun { workloads, cfg })
}

/// The five strong-guarantee systems of the evaluation, in Table 1 order.
pub const STRONG_SYSTEMS: [FsName; 5] = [
    FsName::Nova,
    FsName::NovaFortis,
    FsName::Pmfs,
    FsName::WineFs,
    FsName::SplitFs,
];

/// Formats a duration compactly for tables.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_reaches_each_fs() {
        struct NameOf;
        impl WithKind for NameOf {
            type Out = FsName;
            fn call<K: FsKind>(self, kind: K) -> FsName {
                kind.name()
            }
        }
        for fs in STRONG_SYSTEMS.into_iter().chain([FsName::Ext4Dax, FsName::XfsDax]) {
            assert_eq!(dispatch(fs, FsOptions::fixed(), NameOf), fs);
        }
    }

    #[test]
    fn ace_hunt_finds_an_easy_bug_quickly() {
        let cfg = TestConfig { stop_on_first: true, ..TestConfig::default() };
        let (hit, workloads, _) = hunt_with_ace(BugId::B04, &cfg, 0);
        let hit = hit.expect("bug 4 must fall to ACE");
        assert!(hit.traced);
        assert_eq!(hit.class, "atomicity");
        assert!(workloads <= 56 + 3136);
    }

    #[test]
    fn suite_stats_accumulate() {
        let cfg = TestConfig::default();
        let ws = seq1(AceMode::Strong).into_iter().take(5).collect();
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws, &cfg);
        assert_eq!(s.workloads, 5);
        assert!(s.crash_states > 0);
        assert_eq!(s.reports, 0);
        assert_eq!(s.inflight.len() as u64, s.crash_points);
    }
}
