#![warn(missing_docs)]

//! chipmunk-rs: a from-scratch Rust reproduction of *"Chipmunk:
//! Investigating Crash-Consistency in Persistent-Memory File Systems"*
//! (LeBlanc et al., EuroSys 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`chipmunk`] — the record-and-replay crash-consistency test framework
//!   (the paper's primary contribution);
//! * [`pmem`] / [`pmlog`] — the simulated PM device (x86 epoch persistence
//!   model) and the gray-box persistence-function logger;
//! * [`vfs`] — the shared POSIX-subset interface, the Table 1 bug registry,
//!   coverage instrumentation, and the workload vocabulary;
//! * the seven file systems under test: [`novafs`] (NOVA and NOVA-Fortis),
//!   [`pmfs`], [`winefs`], [`splitfs`], and the weak-guarantee controls
//!   [`ext4dax`] and [`xfsdax`];
//! * [`workloads`] — the ACE systematic generator and the Syzkaller-style
//!   fuzzer.
//!
//! See `DESIGN.md` for the system inventory and per-experiment index, and
//! `EXPERIMENTS.md` for paper-versus-measured results.

pub use chipmunk;
pub use ext4dax;
pub use novafs;
pub use pmem;
pub use pmfs;
pub use pmlog;
pub use splitfs;
pub use vfs;
pub use winefs;
pub use xfsdax;
pub use workloads;
