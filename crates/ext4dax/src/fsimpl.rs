//! The ext4-DAX file-system implementation.

use std::collections::HashMap;

use pmem::PmBackend;
use vfs::{
    covpoint,
    fs::{FileSystem, FsOptions},
    path::{components, is_path_prefix, split_parent},
    Cov, DirEntry, FallocMode, Fd, FileType, FsError, FsResult, Metadata, OpenFlags,
};

use crate::{
    cache::{BlockClass, PageCache},
    journal::{self, JournalBlock},
    layout::{ioff, itype, sboff, Geometry, RawDentry, BLOCK, DENTRY_NAME_MAX, DENTRY_SIZE, INODE_SIZE, MAGIC, MAX_FILE_BLOCKS, NDIRECT, PTRS_PER_BLOCK, ROOT_INO},
};

#[derive(Debug, Clone, Copy)]
struct OpenFile {
    ino: u64,
    offset: u64,
    append: bool,
}

/// The ext4-DAX-style file system (see the crate docs).
#[derive(Clone)]
pub struct Ext4Dax<D> {
    dev: D,
    geo: Geometry,
    cache: PageCache,
    fds: HashMap<u64, OpenFile>,
    next_fd: u64,
    cov: Cov,
    /// Blocks freed since the last journal commit. Their bitmap bits stay
    /// set until the commit that unreferences them, so they cannot be
    /// reallocated and overwritten in place while a committed state still
    /// maps them (the ordered-mode reuse hazard).
    pending_free: Vec<u64>,
}

impl<D: PmBackend> Ext4Dax<D> {
    /// Formats `dev` and mounts the fresh file system.
    pub fn mkfs(mut dev: D, opts: &FsOptions) -> FsResult<Self> {
        let geo = Geometry::for_device(dev.len())?;
        // Superblock.
        let mut sb = vec![0u8; BLOCK as usize];
        let mut put = |off: u64, v: u64| sb[off as usize..off as usize + 8]
            .copy_from_slice(&v.to_le_bytes());
        put(sboff::MAGIC, MAGIC);
        put(sboff::TOTAL_BLOCKS, geo.total_blocks);
        put(sboff::INODE_COUNT, geo.inode_count);
        put(sboff::JOURNAL_START, geo.journal_start);
        put(sboff::JOURNAL_BLOCKS, geo.journal_blocks);
        put(sboff::BITMAP_START, geo.bitmap_start);
        put(sboff::BITMAP_BLOCKS, geo.bitmap_blocks);
        put(sboff::ITABLE_START, geo.itable_start);
        put(sboff::ITABLE_BLOCKS, geo.itable_blocks);
        put(sboff::DATA_START, geo.data_start);
        put(sboff::JOURNAL_SEQ, 0);
        dev.memcpy_nt(0, &sb);
        // Epoch block (block 1): zeroed.
        dev.memset_nt(BLOCK, 0, BLOCK);
        // Bitmap: reserve everything below data_start.
        dev.memset_nt(geo.bitmap_start * BLOCK, 0, geo.bitmap_blocks * BLOCK);
        let mut reserved = vec![0u8; (geo.data_start as usize).div_ceil(8)];
        for b in 0..geo.data_start {
            reserved[(b / 8) as usize] |= 1 << (b % 8);
        }
        dev.memcpy_nt(geo.bitmap_start * BLOCK, &reserved);
        // Inode table: all free except root.
        dev.memset_nt(geo.itable_start * BLOCK, 0, geo.itable_blocks * BLOCK);
        let root = geo.inode_off(ROOT_INO);
        let mut ri = vec![0u8; INODE_SIZE as usize];
        ri[ioff::FTYPE as usize..ioff::FTYPE as usize + 8]
            .copy_from_slice(&itype::DIR.to_le_bytes());
        ri[ioff::NLINK as usize..ioff::NLINK as usize + 8].copy_from_slice(&2u64.to_le_bytes());
        dev.memcpy_nt(root, &ri);
        dev.fence();
        Ok(Ext4Dax {
            dev,
            geo,
            cache: PageCache::new(),
            fds: HashMap::new(),
            next_fd: 3,
            cov: opts.cov.clone(),
            pending_free: Vec::new(),
        })
    }

    /// Mounts `dev`, replaying the journal if a committed transaction was
    /// not checkpointed before the crash.
    pub fn mount(mut dev: D, opts: &FsOptions) -> FsResult<Self> {
        let cov = opts.cov.clone();
        if dev.read_u64(sboff::MAGIC) != MAGIC {
            return Err(FsError::Unmountable("bad superblock magic".into()));
        }
        let geo = Geometry {
            total_blocks: dev.read_u64(sboff::TOTAL_BLOCKS),
            inode_count: dev.read_u64(sboff::INODE_COUNT),
            journal_start: dev.read_u64(sboff::JOURNAL_START),
            journal_blocks: dev.read_u64(sboff::JOURNAL_BLOCKS),
            bitmap_start: dev.read_u64(sboff::BITMAP_START),
            bitmap_blocks: dev.read_u64(sboff::BITMAP_BLOCKS),
            itable_start: dev.read_u64(sboff::ITABLE_START),
            itable_blocks: dev.read_u64(sboff::ITABLE_BLOCKS),
            data_start: dev.read_u64(sboff::DATA_START),
        };
        if geo.total_blocks * BLOCK > dev.len() || geo.data_start >= geo.total_blocks {
            return Err(FsError::Unmountable("superblock geometry out of range".into()));
        }
        let replayed = journal::recover(&mut dev, &geo)?;
        covpoint!(cov, if replayed > 0 { 1 } else { 0 });
        let mut fs = Ext4Dax {
            dev,
            geo,
            cache: PageCache::new(),
            fds: HashMap::new(),
            next_fd: 3,
            cov,
            pending_free: Vec::new(),
        };
        fs.reconcile_bitmap();
        // Basic sanity: root must be a directory.
        if fs.iget(ROOT_INO, ioff::FTYPE) != itype::DIR {
            return Err(FsError::Unmountable("root inode is not a directory".into()));
        }
        Ok(fs)
    }

    /// Returns the underlying device (consuming the mount).
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Sets the checkpoint epoch (block 1, journaled: the new value becomes
    /// durable atomically with the next `sync`/`fsync` commit). Used by the
    /// SplitFS user-space component to make operation-log truncation
    /// race-free against the kernel commit.
    pub fn set_epoch(&mut self, v: u64) {
        self.cache.write_u64(&self.dev, 1, 0, v, BlockClass::Meta);
    }

    /// Reads the checkpoint epoch (cached view).
    pub fn epoch(&self) -> u64 {
        self.read_cached_u64(1, 0)
    }

    // ---- inode helpers (all through the page cache) ----

    fn inode_loc(&self, ino: u64, field: u64) -> (u64, u64) {
        let off = self.geo.inode_off(ino) + field;
        (off / BLOCK, off % BLOCK)
    }

    fn iget(&self, ino: u64, field: u64) -> u64 {
        // The cache requires &mut; use an internal RefCell-free trick: reads
        // of clean blocks through &self would complicate the FileSystem
        // trait, so the cache is only consulted via &mut paths. For &self
        // accessors (stat/readdir/read_file) we read dirty state through a
        // shadow lookup below.
        self.read_u64_shadow(ino, field)
    }

    fn read_u64_shadow(&self, ino: u64, field: u64) -> u64 {
        let (blk, off) = self.inode_loc(ino, field);
        self.read_cached_u64(blk, off)
    }

    fn read_cached_u64(&self, blk: u64, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_cached(blk, off, &mut b);
        u64::from_le_bytes(b)
    }

    fn read_cached(&self, blk: u64, off: u64, buf: &mut [u8]) {
        if let Some(page) = self.cache.peek(blk) {
            buf.copy_from_slice(&page[off as usize..off as usize + buf.len()]);
        } else {
            self.dev.read(blk * BLOCK + off, buf);
        }
    }

    fn iset(&mut self, ino: u64, field: u64, v: u64) {
        let (blk, off) = self.inode_loc(ino, field);
        self.cache.write_u64(&self.dev, blk, off, v, BlockClass::Meta);
    }

    fn ftype_of(&self, ino: u64) -> u64 {
        self.iget(ino, ioff::FTYPE)
    }

    // ---- block allocation ----

    fn alloc_block(&mut self) -> FsResult<u64> {
        let bitmap_bytes = self.geo.total_blocks.div_ceil(8);
        for bblk in 0..self.geo.bitmap_blocks {
            let blk = self.geo.bitmap_start + bblk;
            let limit = (bitmap_bytes - (bblk * BLOCK).min(bitmap_bytes)).min(BLOCK);
            for byte_idx in 0..limit {
                let mut byte = [0u8; 1];
                self.cache.read(&self.dev, blk, byte_idx, &mut byte);
                if byte[0] != 0xff {
                    let bit = byte[0].trailing_ones() as u64;
                    let blkno = (bblk * BLOCK + byte_idx) * 8 + bit;
                    if blkno >= self.geo.total_blocks {
                        return Err(FsError::NoSpace);
                    }
                    byte[0] |= 1 << bit;
                    self.cache.write(&self.dev, blk, byte_idx, &byte, BlockClass::Meta);
                    return Ok(blkno);
                }
            }
        }
        Err(FsError::NoSpace)
    }

    /// Defers the bitmap clear to the next journal commit (see
    /// `pending_free`); the cache page is dropped immediately.
    fn free_block(&mut self, blkno: u64) {
        debug_assert!(blkno >= self.geo.data_start && blkno < self.geo.total_blocks);
        self.pending_free.push(blkno);
        self.cache.evict(blkno);
    }

    fn clear_bitmap_bit(&mut self, blkno: u64) {
        let blk = self.geo.bitmap_start + blkno / (BLOCK * 8);
        let byte_idx = (blkno / 8) % BLOCK;
        let mut byte = [0u8; 1];
        self.cache.read(&self.dev, blk, byte_idx, &mut byte);
        byte[0] &= !(1 << (blkno % 8));
        self.cache.write(&self.dev, blk, byte_idx, &byte, BlockClass::Meta);
    }

    /// Mount-time bitmap reconciliation (a light fsck pass): a crash can
    /// strand set bits for blocks no inode references (their freeing commit
    /// never happened, or happened while the clears were still pending).
    /// Recompute reachability and fix the cached bitmap; the fixes become
    /// durable with the next commit.
    fn reconcile_bitmap(&mut self) {
        let mut referenced = vec![false; self.geo.total_blocks as usize];
        for b in 0..self.geo.data_start {
            referenced[b as usize] = true;
        }
        for ino in 1..=self.geo.inode_count {
            if self.iget(ino, ioff::FTYPE) == itype::FREE {
                continue;
            }
            for (_, b) in self.mapped_from(ino, 0) {
                referenced[b as usize] = true;
            }
            if let Some(ind) = self.valid_blk(self.iget(ino, ioff::INDIRECT)) {
                referenced[ind as usize] = true;
            }
            if let Some(x) = self.valid_blk(self.iget(ino, ioff::XATTR)) {
                referenced[x as usize] = true;
            }
        }
        for b in self.geo.data_start..self.geo.total_blocks {
            let blk = self.geo.bitmap_start + b / (BLOCK * 8);
            let byte_idx = (b / 8) % BLOCK;
            let mut byte = [0u8; 1];
            self.cache.read(&self.dev, blk, byte_idx, &mut byte);
            let set = byte[0] & (1 << (b % 8)) != 0;
            if set != referenced[b as usize] {
                covpoint!(self.cov, 7);
                if referenced[b as usize] {
                    byte[0] |= 1 << (b % 8);
                } else {
                    byte[0] &= !(1 << (b % 8));
                }
                self.cache.write(&self.dev, blk, byte_idx, &byte, BlockClass::Meta);
            }
        }
    }

    fn alloc_inode(&mut self, ftype: u64) -> FsResult<u64> {
        for ino in 1..=self.geo.inode_count {
            if self.iget(ino, ioff::FTYPE) == itype::FREE {
                // Clear the whole inode, then set type and link count.
                let (blk, off) = self.inode_loc(ino, 0);
                self.cache.write(
                    &self.dev,
                    blk,
                    off,
                    &vec![0u8; INODE_SIZE as usize],
                    BlockClass::Meta,
                );
                self.iset(ino, ioff::FTYPE, ftype);
                self.iset(ino, ioff::NLINK, if ftype == itype::DIR { 2 } else { 1 });
                return Ok(ino);
            }
        }
        Err(FsError::NoSpace)
    }

    // ---- file block mapping ----

    /// Validates a block pointer read from the (possibly corrupt) device:
    /// crash states can contain arbitrary bytes, and a garbage pointer must
    /// surface as detectable corruption, never as an out-of-range access.
    fn valid_blk(&self, b: u64) -> Option<u64> {
        (b >= self.geo.data_start && b < self.geo.total_blocks).then_some(b)
    }

    /// Collects the allocated `(file index, block)` pairs of `ino` from
    /// index `start` up, in index order. Equivalent to probing
    /// [`Ext4Dax::get_block`] per index, but reads the indirect pointer
    /// once and the indirect block with one bulk read — the per-slot
    /// re-reads dominated mount, stat, and release scans.
    fn mapped_from(&self, ino: u64, start: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for idx in start.min(NDIRECT as u64)..NDIRECT as u64 {
            if let Some(b) = self.valid_blk(self.iget(ino, ioff::DIRECT + idx * 8)) {
                out.push((idx, b));
            }
        }
        let Some(ind) = self.valid_blk(self.iget(ino, ioff::INDIRECT)) else {
            return out;
        };
        let mut raw = [0u8; BLOCK as usize];
        self.read_cached(ind, 0, &mut raw);
        for e in start.saturating_sub(NDIRECT as u64)..PTRS_PER_BLOCK {
            let b = u64::from_le_bytes(
                raw[(e * 8) as usize..(e * 8 + 8) as usize].try_into().expect("8-byte slot"),
            );
            if let Some(b) = self.valid_blk(b) {
                out.push((NDIRECT as u64 + e, b));
            }
        }
        out
    }

    fn get_block(&self, ino: u64, idx: u64) -> Option<u64> {
        if idx < NDIRECT as u64 {
            self.valid_blk(self.iget(ino, ioff::DIRECT + idx * 8))
        } else if idx < MAX_FILE_BLOCKS {
            let ind = self.valid_blk(self.iget(ino, ioff::INDIRECT))?;
            self.valid_blk(self.read_cached_u64(ind, (idx - NDIRECT as u64) * 8))
        } else {
            None
        }
    }

    fn set_block(&mut self, ino: u64, idx: u64, blkno: u64) -> FsResult<()> {
        if idx < NDIRECT as u64 {
            self.iset(ino, ioff::DIRECT + idx * 8, blkno);
            Ok(())
        } else if idx < MAX_FILE_BLOCKS {
            let mut ind = self.iget(ino, ioff::INDIRECT);
            if ind == 0 {
                if blkno == 0 {
                    return Ok(());
                }
                ind = self.alloc_block()?;
                self.cache.zero_block(ind, BlockClass::Meta);
                self.iset(ino, ioff::INDIRECT, ind);
            }
            self.cache.write_u64(&self.dev, ind, (idx - NDIRECT as u64) * 8, blkno, BlockClass::Meta);
            Ok(())
        } else {
            Err(FsError::NoSpace)
        }
    }

    /// Allocates (zeroed) the block at file index `idx` if unmapped.
    fn ensure_block(&mut self, ino: u64, idx: u64) -> FsResult<u64> {
        if let Some(b) = self.get_block(ino, idx) {
            return Ok(b);
        }
        let b = self.alloc_block()?;
        self.cache.zero_block(b, BlockClass::Data);
        self.set_block(ino, idx, b)?;
        Ok(b)
    }

    fn allocated_blocks(&self, ino: u64) -> u64 {
        self.mapped_from(ino, 0).len() as u64
    }

    // ---- file data I/O ----

    fn write_at(&mut self, ino: u64, off: u64, data: &[u8], class: BlockClass) -> FsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let end = off + data.len() as u64;
        if end.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let mut pos = 0usize;
        while pos < data.len() {
            let cur = off + pos as u64;
            let idx = cur / BLOCK;
            let in_blk = cur % BLOCK;
            let n = ((BLOCK - in_blk) as usize).min(data.len() - pos);
            let blk = self.ensure_block(ino, idx)?;
            self.cache.write(&self.dev, blk, in_blk, &data[pos..pos + n], class);
            pos += n;
        }
        if end > self.iget(ino, ioff::SIZE) {
            self.iset(ino, ioff::SIZE, end);
        }
        Ok(data.len())
    }

    fn read_at(&self, ino: u64, off: u64, buf: &mut [u8]) -> usize {
        let size = self.iget(ino, ioff::SIZE);
        if off >= size {
            return 0;
        }
        let n = buf.len().min((size - off) as usize);
        let mut pos = 0usize;
        while pos < n {
            let cur = off + pos as u64;
            let idx = cur / BLOCK;
            let in_blk = cur % BLOCK;
            let step = ((BLOCK - in_blk) as usize).min(n - pos);
            match self.get_block(ino, idx) {
                Some(blk) => {
                    self.read_cached(blk, in_blk, &mut buf[pos..pos + step]);
                }
                None => {
                    buf[pos..pos + step].fill(0); // hole
                }
            }
            pos += step;
        }
        n
    }

    // ---- directories ----

    /// Dentry slots are laid out `SLOTS_PER_BLOCK` to a block so that no
    /// entry straddles a block boundary; the directory size field counts
    /// used slots (× `DENTRY_SIZE`).
    fn slot_loc(slot: u64) -> (u64, u64) {
        const SLOTS_PER_BLOCK: u64 = BLOCK / DENTRY_SIZE;
        (slot / SLOTS_PER_BLOCK, (slot % SLOTS_PER_BLOCK) * DENTRY_SIZE)
    }

    fn dir_slots(&self, dir: u64) -> u64 {
        // Clamp: a corrupt size field must not send scans (or allocations)
        // off the end of the world.
        let max = MAX_FILE_BLOCKS * (BLOCK / DENTRY_SIZE);
        (self.iget(dir, ioff::SIZE) / DENTRY_SIZE).min(max)
    }

    fn dentry_at(&self, dir: u64, slot: u64) -> Option<RawDentry> {
        let (idx, off) = Self::slot_loc(slot);
        let blk = self.get_block(dir, idx)?;
        let mut buf = [0u8; DENTRY_SIZE as usize];
        self.read_cached(blk, off, &mut buf);
        RawDentry::decode(&buf)
    }

    fn dir_lookup(&self, dir: u64, name: &str) -> Option<(u64, u64)> {
        for slot in 0..self.dir_slots(dir) {
            if let Some(d) = self.dentry_at(dir, slot) {
                if d.name == name {
                    return Some((slot, d.ino));
                }
            }
        }
        None
    }

    fn dir_live_count(&self, dir: u64) -> u64 {
        (0..self.dir_slots(dir)).filter(|&s| self.dentry_at(dir, s).is_some()).count() as u64
    }

    fn dir_insert(&mut self, dir: u64, name: &str, ino: u64) -> FsResult<()> {
        if name.len() > DENTRY_NAME_MAX {
            return Err(FsError::NameTooLong);
        }
        let enc = RawDentry { ino, name: name.to_string() }.encode();
        // Reuse a free slot if one exists.
        for slot in 0..self.dir_slots(dir) {
            if self.dentry_at(dir, slot).is_none() {
                let (idx, off) = Self::slot_loc(slot);
                let blk = self.ensure_block(dir, idx)?;
                self.cache.write(&self.dev, blk, off, &enc, BlockClass::Meta);
                return Ok(());
            }
        }
        // Append a new slot.
        let slot = self.dir_slots(dir);
        let (idx, off) = Self::slot_loc(slot);
        if idx >= MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let blk = self.ensure_block(dir, idx)?;
        self.cache.write(&self.dev, blk, off, &enc, BlockClass::Meta);
        self.iset(dir, ioff::SIZE, (slot + 1) * DENTRY_SIZE);
        Ok(())
    }

    fn dir_remove_slot(&mut self, dir: u64, slot: u64) {
        let (idx, off) = Self::slot_loc(slot);
        if let Some(blk) = self.get_block(dir, idx) {
            self.cache.write(&self.dev, blk, off, &[0u8; DENTRY_SIZE as usize], BlockClass::Meta);
        }
    }

    // ---- path resolution ----

    fn valid_ino(&self, ino: u64) -> FsResult<u64> {
        if ino >= 1 && ino <= self.geo.inode_count {
            Ok(ino)
        } else {
            Err(FsError::Corrupt(format!("directory entry references invalid inode {ino}")))
        }
    }

    fn resolve(&self, path: &str) -> FsResult<u64> {
        let mut cur = ROOT_INO;
        for c in components(path)? {
            if self.ftype_of(cur) != itype::DIR {
                return Err(FsError::NotDir);
            }
            cur = self.valid_ino(self.dir_lookup(cur, c).ok_or(FsError::NotFound)?.1)?;
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(u64, &'p str)> {
        let (parents, name) = split_parent(path)?;
        let mut cur = ROOT_INO;
        for c in parents {
            if self.ftype_of(cur) != itype::DIR {
                return Err(FsError::NotDir);
            }
            cur = self.valid_ino(self.dir_lookup(cur, c).ok_or(FsError::NotFound)?.1)?;
        }
        if self.ftype_of(cur) != itype::DIR {
            return Err(FsError::NotDir);
        }
        Ok((cur, name))
    }

    // ---- deletion ----

    fn open_count(&self, ino: u64) -> usize {
        self.fds.values().filter(|f| f.ino == ino).count()
    }

    /// Frees all data blocks and the indirect block (not the xattr block).
    fn free_file_blocks(&mut self, ino: u64) {
        for (_, b) in self.mapped_from(ino, 0) {
            self.free_block(b);
            // The caller clears or resets the pointers.
        }
        let ind = self.iget(ino, ioff::INDIRECT);
        if ind != 0 {
            self.free_block(ind);
        }
    }

    fn release_inode(&mut self, ino: u64) {
        self.free_file_blocks(ino);
        let x = self.iget(ino, ioff::XATTR);
        if x != 0 {
            self.free_block(x);
        }
        self.iset(ino, ioff::FTYPE, itype::FREE);
        self.iset(ino, ioff::SIZE, 0);
        self.iset(ino, ioff::INDIRECT, 0);
        self.iset(ino, ioff::XATTR, 0);
        for i in 0..NDIRECT as u64 {
            self.iset(ino, ioff::DIRECT + i * 8, 0);
        }
    }

    fn drop_if_unused(&mut self, ino: u64) {
        if self.iget(ino, ioff::NLINK) == 0 && self.open_count(ino) == 0 {
            self.release_inode(ino);
        }
    }

    // ---- commit machinery ----

    fn writeback_file_data(&mut self, ino: u64) {
        let mut blocks = Vec::new();
        for (_, b) in self.mapped_from(ino, 0) {
            if self.cache.is_dirty(b) {
                blocks.push(b);
            }
        }
        for b in blocks {
            let data = self.cache.block(&self.dev, b).to_vec();
            self.dev.memcpy_nt(b * BLOCK, &data);
            self.cache.mark_clean(b);
        }
        self.dev.fence();
    }

    fn writeback_all_data(&mut self) {
        for b in self.cache.dirty_of(BlockClass::Data) {
            let data = self.cache.block(&self.dev, b).to_vec();
            self.dev.memcpy_nt(b * BLOCK, &data);
            self.cache.mark_clean(b);
        }
        self.dev.fence();
    }

    fn commit_metadata(&mut self) -> FsResult<()> {
        // Pending frees become part of this commit: once it is durable, no
        // committed state references the blocks, so reuse is safe.
        let pf = std::mem::take(&mut self.pending_free);
        for b in pf {
            self.clear_bitmap_bit(b);
        }
        let dirty = self.cache.dirty_of(BlockClass::Meta);
        if dirty.is_empty() {
            return Ok(());
        }
        let blocks: Vec<JournalBlock> = dirty
            .iter()
            .map(|&b| JournalBlock { blkno: b, data: self.cache.block(&self.dev, b).to_vec() })
            .collect();
        journal::commit_and_checkpoint(&mut self.dev, &self.geo, &blocks)?;
        for b in dirty {
            self.cache.mark_clean(b);
        }
        Ok(())
    }
}

impl<D: PmBackend> FileSystem for Ext4Dax<D> {
    fn open(&mut self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        covpoint!(self.cov);
        let ino = match self.resolve(path) {
            Ok(ino) => {
                if flags.create && flags.excl {
                    return Err(FsError::Exists);
                }
                if self.ftype_of(ino) == itype::DIR {
                    return Err(FsError::IsDir);
                }
                if flags.trunc {
                    covpoint!(self.cov);
                    self.free_file_blocks(ino);
                    for i in 0..NDIRECT as u64 {
                        self.iset(ino, ioff::DIRECT + i * 8, 0);
                    }
                    self.iset(ino, ioff::INDIRECT, 0);
                    self.iset(ino, ioff::SIZE, 0);
                }
                ino
            }
            Err(FsError::NotFound) if flags.create => {
                covpoint!(self.cov);
                let (parent, name) = self.resolve_parent(path)?;
                let ino = self.alloc_inode(itype::FILE)?;
                self.dir_insert(parent, name, ino)?;
                ino
            }
            Err(e) => return Err(e),
        };
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(fd, OpenFile { ino, offset: 0, append: flags.append });
        Ok(Fd(fd))
    }

    fn close(&mut self, fd: Fd) -> FsResult<()> {
        let of = self.fds.remove(&fd.0).ok_or(FsError::BadFd)?;
        self.drop_if_unused(of.ino);
        Ok(())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        if self.dir_lookup(parent, name).is_some() {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_inode(itype::DIR)?;
        self.dir_insert(parent, name, ino)?;
        let pn = self.iget(parent, ioff::NLINK);
        self.iset(parent, ioff::NLINK, pn + 1);
        Ok(())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        let (slot, ino) = self.dir_lookup(parent, name).ok_or(FsError::NotFound)?;
        if self.ftype_of(ino) != itype::DIR {
            return Err(FsError::NotDir);
        }
        if self.dir_live_count(ino) != 0 {
            return Err(FsError::NotEmpty);
        }
        self.dir_remove_slot(parent, slot);
        self.release_inode(ino);
        let pn = self.iget(parent, ioff::NLINK);
        self.iset(parent, ioff::NLINK, pn - 1);
        Ok(())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        let (slot, ino) = self.dir_lookup(parent, name).ok_or(FsError::NotFound)?;
        if self.ftype_of(ino) == itype::DIR {
            return Err(FsError::IsDir);
        }
        self.dir_remove_slot(parent, slot);
        let n = self.iget(ino, ioff::NLINK);
        self.iset(ino, ioff::NLINK, n - 1);
        self.drop_if_unused(ino);
        Ok(())
    }

    fn link(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(old)?;
        if self.ftype_of(ino) == itype::DIR {
            return Err(FsError::IsDir);
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.dir_lookup(parent, name).is_some() {
            return Err(FsError::Exists);
        }
        let n = self.iget(ino, ioff::NLINK);
        self.iset(ino, ioff::NLINK, n + 1);
        self.dir_insert(parent, name, ino)?;
        Ok(())
    }

    fn rename(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let src_ino = self.resolve(old)?;
        let src_is_dir = self.ftype_of(src_ino) == itype::DIR;
        if src_is_dir && is_path_prefix(old, new) && old != new {
            return Err(FsError::Invalid);
        }
        if old == new {
            return Ok(());
        }
        let (src_parent, src_name) = self.resolve_parent(old)?;
        let (dst_parent, dst_name) = self.resolve_parent(new)?;
        let (src_slot, _) = self.dir_lookup(src_parent, src_name).ok_or(FsError::NotFound)?;

        if let Some((dst_slot, dst_ino)) = self.dir_lookup(dst_parent, dst_name) {
            if dst_ino == src_ino {
                return Ok(());
            }
            let dst_is_dir = self.ftype_of(dst_ino) == itype::DIR;
            match (src_is_dir, dst_is_dir) {
                (true, true) => {
                    if self.dir_live_count(dst_ino) != 0 {
                        return Err(FsError::NotEmpty);
                    }
                    self.dir_remove_slot(dst_parent, dst_slot);
                    self.release_inode(dst_ino);
                    let pn = self.iget(dst_parent, ioff::NLINK);
                    self.iset(dst_parent, ioff::NLINK, pn - 1);
                }
                (true, false) => return Err(FsError::NotDir),
                (false, true) => return Err(FsError::IsDir),
                (false, false) => {
                    self.dir_remove_slot(dst_parent, dst_slot);
                    let n = self.iget(dst_ino, ioff::NLINK);
                    self.iset(dst_ino, ioff::NLINK, n - 1);
                    self.drop_if_unused(dst_ino);
                }
            }
        }
        self.dir_remove_slot(src_parent, src_slot);
        self.dir_insert(dst_parent, dst_name, src_ino)?;
        if src_is_dir && src_parent != dst_parent {
            let a = self.iget(src_parent, ioff::NLINK);
            self.iset(src_parent, ioff::NLINK, a - 1);
            let b = self.iget(dst_parent, ioff::NLINK);
            self.iset(dst_parent, ioff::NLINK, b + 1);
        }
        Ok(())
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(path)?;
        if self.ftype_of(ino) == itype::DIR {
            return Err(FsError::IsDir);
        }
        if size.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let old = self.iget(ino, ioff::SIZE);
        if size < old {
            // Free whole blocks beyond the new size and zero the partial
            // tail of the boundary block.
            let keep = size.div_ceil(BLOCK);
            for (idx, b) in self.mapped_from(ino, keep) {
                self.free_block(b);
                self.set_block(ino, idx, 0)?;
            }
            if !size.is_multiple_of(BLOCK) {
                if let Some(b) = self.get_block(ino, size / BLOCK) {
                    let in_blk = size % BLOCK;
                    let zeros = vec![0u8; (BLOCK - in_blk) as usize];
                    self.cache.write(&self.dev, b, in_blk, &zeros, BlockClass::Data);
                }
            }
        }
        self.iset(ino, ioff::SIZE, size);
        Ok(())
    }

    fn fallocate(&mut self, fd: Fd, mode: FallocMode, off: u64, len: u64) -> FsResult<()> {
        covpoint!(self.cov);
        if len == 0 {
            return Err(FsError::Invalid);
        }
        let ino = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.ino;
        let end = off + len;
        if end.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        match mode {
            FallocMode::Allocate | FallocMode::KeepSize => {
                for idx in off / BLOCK..end.div_ceil(BLOCK) {
                    self.ensure_block(ino, idx)?;
                }
                if mode == FallocMode::Allocate && end > self.iget(ino, ioff::SIZE) {
                    self.iset(ino, ioff::SIZE, end);
                }
            }
            FallocMode::ZeroRange | FallocMode::PunchHole => {
                let size = self.iget(ino, ioff::SIZE);
                let z_end = end.min(size);
                let mut cur = off;
                while cur < z_end {
                    let idx = cur / BLOCK;
                    let in_blk = cur % BLOCK;
                    let n = (BLOCK - in_blk).min(z_end - cur);
                    if mode == FallocMode::PunchHole && in_blk == 0 && n == BLOCK {
                        if let Some(b) = self.get_block(ino, idx) {
                            self.free_block(b);
                            self.set_block(ino, idx, 0)?;
                        }
                    } else if let Some(b) = self.get_block(ino, idx) {
                        self.cache.write(
                            &self.dev,
                            b,
                            in_blk,
                            &vec![0u8; n as usize],
                            BlockClass::Data,
                        );
                    }
                    cur += n;
                }
            }
        }
        Ok(())
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        let of = *self.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        let off = if of.append { self.iget(of.ino, ioff::SIZE) } else { of.offset };
        let n = self.write_at(of.ino, off, data, BlockClass::Data)?;
        if let Some(f) = self.fds.get_mut(&fd.0) {
            f.offset = off + n as u64;
        }
        Ok(n)
    }

    fn pwrite(&mut self, fd: Fd, off: u64, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        let ino = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.ino;
        self.write_at(ino, off, data, BlockClass::Data)
    }

    fn pread(&self, fd: Fd, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let ino = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.ino;
        Ok(self.read_at(ino, off, buf))
    }

    fn fsync(&mut self, fd: Fd) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.ino;
        // Ordered mode: data in place first, then the metadata journal.
        self.writeback_file_data(ino);
        self.commit_metadata()
    }

    fn sync(&mut self) -> FsResult<()> {
        covpoint!(self.cov);
        self.writeback_all_data();
        self.commit_metadata()
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let ino = self.resolve(path)?;
        let ftype = self.ftype_of(ino);
        Ok(Metadata {
            ino,
            ftype: if ftype == itype::DIR { FileType::Directory } else { FileType::Regular },
            nlink: self.iget(ino, ioff::NLINK),
            size: if ftype == itype::DIR {
                self.dir_live_count(ino)
            } else {
                self.iget(ino, ioff::SIZE)
            },
            blocks: if ftype == itype::DIR { 1 } else { self.allocated_blocks(ino) },
        })
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.resolve(path)?;
        if self.ftype_of(ino) != itype::DIR {
            return Err(FsError::NotDir);
        }
        let mut out = Vec::new();
        for slot in 0..self.dir_slots(ino) {
            if let Some(d) = self.dentry_at(ino, slot) {
                let child = self.valid_ino(d.ino)?;
                let ftype = if self.ftype_of(child) == itype::DIR {
                    FileType::Directory
                } else {
                    FileType::Regular
                };
                out.push(DirEntry { name: d.name, ino: child, ftype });
            }
        }
        out.sort();
        Ok(out)
    }

    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let ino = self.resolve(path)?;
        if self.ftype_of(ino) == itype::DIR {
            return Err(FsError::IsDir);
        }
        let size = self.iget(ino, ioff::SIZE);
        if size > MAX_FILE_BLOCKS * BLOCK {
            return Err(FsError::Corrupt(format!(
                "inode {ino} size {size} exceeds the maximum file size"
            )));
        }
        let mut buf = vec![0u8; size as usize];
        self.read_at(ino, 0, &mut buf);
        Ok(buf)
    }

    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        covpoint!(self.cov);
        if name.len() > 30 || value.len() > 88 {
            return Err(FsError::Invalid);
        }
        let ino = self.resolve(path)?;
        let mut xblk = self.iget(ino, ioff::XATTR);
        if xblk == 0 {
            xblk = self.alloc_block()?;
            self.cache.zero_block(xblk, BlockClass::Meta);
            self.iset(ino, ioff::XATTR, xblk);
        }
        // Entry format: [name_len u8][val_len u8][name 30][value 88] = 120.
        let mut free_slot = None;
        for slot in 0..(BLOCK / 120) {
            let off = slot * 120;
            let mut hdr = [0u8; 32];
            self.cache.read(&self.dev, xblk, off, &mut hdr);
            let nlen = hdr[0] as usize;
            if nlen == 0 {
                free_slot.get_or_insert(slot);
                continue;
            }
            if &hdr[2..2 + nlen.min(30)] == name.as_bytes() {
                free_slot = Some(slot); // overwrite in place
                break;
            }
        }
        let slot = free_slot.ok_or(FsError::NoSpace)?;
        let mut entry = [0u8; 120];
        entry[0] = name.len() as u8;
        entry[1] = value.len() as u8;
        entry[2..2 + name.len()].copy_from_slice(name.as_bytes());
        entry[32..32 + value.len()].copy_from_slice(value);
        self.cache.write(&self.dev, xblk, slot * 120, &entry, BlockClass::Meta);
        Ok(())
    }

    fn removexattr(&mut self, path: &str, name: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(path)?;
        let xblk = self.iget(ino, ioff::XATTR);
        if xblk == 0 {
            return Err(FsError::NotFound);
        }
        for slot in 0..(BLOCK / 120) {
            let off = slot * 120;
            let mut hdr = [0u8; 32];
            self.cache.read(&self.dev, xblk, off, &mut hdr);
            let nlen = hdr[0] as usize;
            if nlen != 0 && &hdr[2..2 + nlen.min(30)] == name.as_bytes() {
                self.cache.write(&self.dev, xblk, off, &[0u8; 120], BlockClass::Meta);
                return Ok(());
            }
        }
        Err(FsError::NotFound)
    }
}
