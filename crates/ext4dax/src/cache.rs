//! Re-export of the shared volatile page cache (see [`vfs::pagecache`]);
//! ext4-DAX and XFS-DAX share it just as they share the Linux page cache.

pub use vfs::pagecache::{BlockClass, PageCache};
