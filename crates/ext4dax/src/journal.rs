//! Physical redo journal (jbd2-style, simplified).
//!
//! A transaction is laid out from the start of the journal region as a
//! descriptor block (magic, transaction id, home block numbers), the payload
//! blocks, and a commit block carrying a checksum over the payload. The
//! transaction id must match the superblock's journal sequence number to be
//! live; checkpointing bumps the sequence, which retires the transaction
//! without erasing it.
//!
//! Crash safety is the classic redo argument: a transaction missing its
//! commit block (or failing its checksum) is ignored at mount, leaving the
//! pre-`fsync` state — allowed under weak guarantees because the `fsync`
//! never returned. A committed transaction is idempotently replayable.

use pmem::PmBackend;
use vfs::{cov::fnv1a, FsError, FsResult};

use crate::layout::{sboff, Geometry, BLOCK};

/// Magic tag of a descriptor block.
pub const DESC_MAGIC: u64 = u64::from_le_bytes(*b"J4DESC\0\0");

/// Magic tag of a commit block.
pub const COMMIT_MAGIC: u64 = u64::from_le_bytes(*b"J4COMMIT");

/// Maximum home blocks per transaction (descriptor capacity).
pub fn max_blocks_per_txn(geo: &Geometry) -> usize {
    // Descriptor block holds magic, txid, nblocks, then block numbers.
    let desc_cap = (BLOCK as usize - 24) / 8;
    // Journal must fit descriptor + payload + commit.
    desc_cap.min(geo.journal_blocks as usize - 2)
}

/// One block to be journaled: home block number and contents.
pub struct JournalBlock {
    /// Home (destination) block number.
    pub blkno: u64,
    /// Block contents.
    pub data: Vec<u8>,
}

fn checksum(blocks: &[JournalBlock]) -> u64 {
    let mut acc: u64 = 0x6a64_6273; // "jdbs"
    for b in blocks {
        acc = acc.rotate_left(7) ^ b.blkno ^ fnv1a(&b.data);
    }
    acc
}

/// Commits `blocks` through the journal and checkpoints them home.
///
/// On return everything is persistent and the journal is retired.
pub fn commit_and_checkpoint<D: PmBackend>(
    dev: &mut D,
    geo: &Geometry,
    blocks: &[JournalBlock],
) -> FsResult<()> {
    for chunk in blocks.chunks(max_blocks_per_txn(geo).max(1)) {
        commit_one(dev, geo, chunk)?;
    }
    Ok(())
}

fn commit_one<D: PmBackend>(dev: &mut D, geo: &Geometry, blocks: &[JournalBlock]) -> FsResult<()> {
    if blocks.is_empty() {
        return Ok(());
    }
    let seq = dev.read_u64(sboff::JOURNAL_SEQ);
    let jbase = geo.journal_start * BLOCK;

    // 1. Descriptor + payload.
    let mut desc = vec![0u8; BLOCK as usize];
    desc[0..8].copy_from_slice(&DESC_MAGIC.to_le_bytes());
    desc[8..16].copy_from_slice(&seq.to_le_bytes());
    desc[16..24].copy_from_slice(&(blocks.len() as u64).to_le_bytes());
    for (i, b) in blocks.iter().enumerate() {
        let o = 24 + i * 8;
        desc[o..o + 8].copy_from_slice(&b.blkno.to_le_bytes());
    }
    dev.memcpy_nt(jbase, &desc);
    for (i, b) in blocks.iter().enumerate() {
        dev.memcpy_nt(jbase + (1 + i as u64) * BLOCK, &b.data);
    }
    dev.fence();

    // 2. Commit record.
    let mut commit = [0u8; 24];
    commit[0..8].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
    commit[8..16].copy_from_slice(&seq.to_le_bytes());
    commit[16..24].copy_from_slice(&checksum(blocks).to_le_bytes());
    dev.memcpy_nt(jbase + (1 + blocks.len() as u64) * BLOCK, &commit);
    dev.fence();

    // 3. Checkpoint home.
    for b in blocks.iter() {
        dev.memcpy_nt(b.blkno * BLOCK, &b.data);
    }
    dev.fence();

    // 4. Retire the transaction.
    dev.persist_u64(sboff::JOURNAL_SEQ, seq + 1);
    Ok(())
}

/// Replays a committed-but-unretired transaction at mount, if present.
///
/// Returns the number of blocks replayed.
pub fn recover<D: PmBackend>(dev: &mut D, geo: &Geometry) -> FsResult<u64> {
    let seq = dev.read_u64(sboff::JOURNAL_SEQ);
    let jbase = geo.journal_start * BLOCK;
    if dev.read_u64(jbase) != DESC_MAGIC || dev.read_u64(jbase + 8) != seq {
        return Ok(0); // empty or retired journal
    }
    let nblocks = dev.read_u64(jbase + 16);
    if nblocks == 0 || nblocks > max_blocks_per_txn(geo) as u64 {
        return Err(FsError::Unmountable(format!(
            "journal descriptor claims {nblocks} blocks, exceeding journal capacity"
        )));
    }
    let commit_off = jbase + (1 + nblocks) * BLOCK;
    if dev.read_u64(commit_off) != COMMIT_MAGIC || dev.read_u64(commit_off + 8) != seq {
        return Ok(0); // uncommitted: discard
    }
    // Gather payload and verify the checksum.
    let mut blocks = Vec::with_capacity(nblocks as usize);
    for i in 0..nblocks {
        let blkno = dev.read_u64(jbase + 24 + i * 8);
        if blkno >= geo.total_blocks {
            return Err(FsError::Unmountable(format!(
                "journal entry targets out-of-range block {blkno}"
            )));
        }
        let data = dev.read_vec(jbase + (1 + i) * BLOCK, BLOCK);
        blocks.push(JournalBlock { blkno, data });
    }
    if dev.read_u64(commit_off + 16) != checksum(&blocks) {
        return Ok(0); // torn commit: discard
    }
    for b in &blocks {
        dev.memcpy_nt(b.blkno * BLOCK, &b.data);
    }
    dev.fence();
    dev.persist_u64(sboff::JOURNAL_SEQ, seq + 1);
    Ok(nblocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmDevice;

    fn setup() -> (PmDevice, Geometry) {
        let size = 8 * 1024 * 1024;
        let geo = Geometry::for_device(size).unwrap();
        let dev = PmDevice::new(size);
        (dev, geo)
    }

    #[test]
    fn commit_checkpoints_home() {
        let (mut dev, geo) = setup();
        let blk = geo.data_start;
        let data = vec![0xabu8; BLOCK as usize];
        commit_and_checkpoint(&mut dev, &geo, &[JournalBlock { blkno: blk, data: data.clone() }])
            .unwrap();
        assert_eq!(dev.read_vec(blk * BLOCK, BLOCK), data);
        assert_eq!(dev.read_u64(sboff::JOURNAL_SEQ), 1);
        // Journal now retired: recovery is a no-op.
        assert_eq!(recover(&mut dev, &geo).unwrap(), 0);
    }

    #[test]
    fn committed_but_uncheckpointed_txn_replays() {
        let (mut dev, geo) = setup();
        let blk = geo.data_start + 1;
        let data = vec![0x5au8; BLOCK as usize];
        // Simulate a crash right after the commit record: journal written,
        // home not updated, seq not bumped.
        let seq = dev.read_u64(sboff::JOURNAL_SEQ);
        let jbase = geo.journal_start * BLOCK;
        let mut desc = vec![0u8; BLOCK as usize];
        desc[0..8].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[8..16].copy_from_slice(&seq.to_le_bytes());
        desc[16..24].copy_from_slice(&1u64.to_le_bytes());
        desc[24..32].copy_from_slice(&blk.to_le_bytes());
        dev.memcpy_nt(jbase, &desc);
        dev.memcpy_nt(jbase + BLOCK, &data);
        let cs = checksum(&[JournalBlock { blkno: blk, data: data.clone() }]);
        let mut commit = [0u8; 24];
        commit[0..8].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        commit[8..16].copy_from_slice(&seq.to_le_bytes());
        commit[16..24].copy_from_slice(&cs.to_le_bytes());
        dev.memcpy_nt(jbase + 2 * BLOCK, &commit);
        dev.fence();

        assert_eq!(recover(&mut dev, &geo).unwrap(), 1);
        assert_eq!(dev.read_vec(blk * BLOCK, BLOCK), data);
        assert_eq!(dev.read_u64(sboff::JOURNAL_SEQ), seq + 1);
    }

    #[test]
    fn torn_transaction_is_ignored() {
        let (mut dev, geo) = setup();
        let jbase = geo.journal_start * BLOCK;
        let seq = dev.read_u64(sboff::JOURNAL_SEQ);
        let mut desc = vec![0u8; 64];
        desc[0..8].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[8..16].copy_from_slice(&seq.to_le_bytes());
        desc[16..24].copy_from_slice(&1u64.to_le_bytes());
        desc[24..32].copy_from_slice(&geo.data_start.to_le_bytes());
        dev.memcpy_nt(jbase, &desc);
        dev.fence();
        // No commit block.
        assert_eq!(recover(&mut dev, &geo).unwrap(), 0);
    }

    #[test]
    fn oversized_descriptor_rejected() {
        let (mut dev, geo) = setup();
        let jbase = geo.journal_start * BLOCK;
        let mut desc = vec![0u8; 32];
        desc[0..8].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        desc[8..16].copy_from_slice(&0u64.to_le_bytes());
        desc[16..24].copy_from_slice(&100_000u64.to_le_bytes());
        dev.memcpy_nt(jbase, &desc);
        dev.fence();
        assert!(matches!(recover(&mut dev, &geo), Err(FsError::Unmountable(_))));
    }

    #[test]
    fn multi_chunk_commit() {
        let (mut dev, geo) = setup();
        let n = max_blocks_per_txn(&geo) + 3;
        let blocks: Vec<JournalBlock> = (0..n)
            .map(|i| JournalBlock {
                blkno: geo.data_start + i as u64,
                data: vec![i as u8; BLOCK as usize],
            })
            .collect();
        commit_and_checkpoint(&mut dev, &geo, &blocks).unwrap();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(dev.read_vec(b.blkno * BLOCK, BLOCK), vec![i as u8; BLOCK as usize]);
        }
        assert_eq!(dev.read_u64(sboff::JOURNAL_SEQ), 2);
    }
}
