//! Lightweight code-coverage instrumentation.
//!
//! The paper adapts Syzkaller, which relies on compiler-inserted coverage
//! (KCOV / GCC sancov). The analogue here is explicit instrumentation: file
//! systems call `covpoint!` at interesting program points (syscall entry,
//! branch arms, recovery paths), which records a hash of the source location
//! into a shared [`Cov`] sink. The fuzzer keeps seeds that produce new
//! coverage bits, exactly like Syzkaller's feedback loop.
//!
//! Coverage is disabled by default and costs one branch per point when off.

use std::{collections::HashSet, sync::Arc};

use parking_lot::Mutex;

/// A shared coverage sink. Clones share the same underlying set.
#[derive(Debug, Clone, Default)]
pub struct Cov {
    sink: Option<Arc<Mutex<HashSet<u64>>>>,
}

impl Cov {
    /// An enabled coverage sink.
    pub fn enabled() -> Self {
        Cov { sink: Some(Arc::new(Mutex::new(HashSet::new()))) }
    }

    /// A disabled sink (all hits ignored). This is the default.
    pub fn disabled() -> Self {
        Cov::default()
    }

    /// Whether hits are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records a coverage point. `key` is typically produced by
    /// `covpoint!`.
    #[inline]
    pub fn hit(&self, key: &'static str) {
        if let Some(s) = &self.sink {
            s.lock().insert(fnv1a(key.as_bytes()));
        }
    }

    /// Records a coverage point with extra dynamic context (e.g. a recovery
    /// branch index), so data-dependent paths count as distinct coverage.
    #[inline]
    pub fn hit_with(&self, key: &'static str, ctx: u64) {
        if let Some(s) = &self.sink {
            s.lock().insert(fnv1a(key.as_bytes()) ^ ctx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
    }

    /// Number of distinct points hit so far.
    pub fn count(&self) -> usize {
        self.sink.as_ref().map_or(0, |s| s.lock().len())
    }

    /// Snapshot of the hit set.
    pub fn snapshot(&self) -> HashSet<u64> {
        self.sink.as_ref().map_or_else(HashSet::new, |s| s.lock().clone())
    }

    /// Clears recorded coverage (keeps the sink enabled).
    pub fn clear(&self) {
        if let Some(s) = &self.sink {
            s.lock().clear();
        }
    }

    /// Merges a set of hits (typically another sink's [`Cov::snapshot`])
    /// into this sink. No-op when disabled.
    pub fn absorb(&self, hits: &HashSet<u64>) {
        if let Some(s) = &self.sink {
            s.lock().extend(hits.iter().copied());
        }
    }

    /// Merges this sink's hits into `acc`, returning how many were new.
    pub fn merge_into(&self, acc: &mut HashSet<u64>) -> usize {
        let mut new = 0;
        if let Some(s) = &self.sink {
            for &h in s.lock().iter() {
                if acc.insert(h) {
                    new += 1;
                }
            }
        }
        new
    }
}

/// FNV-1a hash of `bytes` (stable across runs; coverage keys must be
/// deterministic for the fuzzer's corpus bookkeeping).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Records a coverage point identified by the call site (module, line).
#[macro_export]
macro_rules! covpoint {
    ($cov:expr) => {
        $cov.hit(concat!(module_path!(), ":", line!()))
    };
    ($cov:expr, $ctx:expr) => {
        $cov.hit_with(concat!(module_path!(), ":", line!()), $ctx as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let c = Cov::disabled();
        covpoint!(c);
        assert_eq!(c.count(), 0);
        assert!(!c.is_enabled());
    }

    #[test]
    fn enabled_sink_deduplicates() {
        let c = Cov::enabled();
        for _ in 0..3 {
            c.hit("a");
        }
        c.hit("b");
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn covpoint_distinguishes_sites_and_ctx() {
        let c = Cov::enabled();
        covpoint!(c);
        covpoint!(c);
        assert_eq!(c.count(), 2, "two distinct source lines");
        c.clear();
        covpoint!(c, 1);
        covpoint!(c, 2);
        assert_eq!(c.count(), 2, "distinct contexts at one site");
    }

    #[test]
    fn clones_share_the_sink() {
        let c = Cov::enabled();
        let d = c.clone();
        d.hit("x");
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn merge_reports_new_hits() {
        let c = Cov::enabled();
        c.hit("a");
        c.hit("b");
        let mut acc = HashSet::new();
        assert_eq!(c.merge_into(&mut acc), 2);
        assert_eq!(c.merge_into(&mut acc), 0);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b"chipmunk"), fnv1a(b"chipmunk"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
