//! Offline shim for the `rand` 0.8 crate surface used by this workspace:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen_range` / `gen_bool` / `gen`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and of ample quality for workload generation. It is **not** the
//! upstream `StdRng` (ChaCha12): streams differ from real `rand` for the
//! same seed, which is fine here because every consumer only relies on
//! self-consistency of a fixed seed.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the slice-seed variant is omitted; the workspace
/// only seeds from `u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seeding and for hashing case indices.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; SplitMix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from an interval. The generic
/// `SampleRange` impls below go through this trait so type inference flows
/// from the call site into integer literals, exactly as in upstream rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`. Panics if empty.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
    /// Uniform sample from `[lo, hi]`. Panics if empty.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut impl RngCore) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                // Lemire's multiply-shift; bias is < 2^-64 per draw and
                // irrelevant for test workload generation.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut impl RngCore) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128).wrapping_sub(lo as i128) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: f64, hi: f64, rng: &mut impl RngCore) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + frac * (hi - lo)
    }
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut impl RngCore) -> f64 {
        Self::sample_half_open(lo, f64::from_bits(hi.to_bits() + 1), rng)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics if the range is empty.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut impl RngCore) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Uniform sample of a whole type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1u8..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((5_000..7_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _: u8 = r.gen_range(0u8..=u8::MAX);
        }
    }
}
