//! Chaos self-tests for the fault-isolated checker: inject device-level
//! faults (panics, infinite loops, torn stores) through [`ChaosKind`] into
//! otherwise-correct file systems and assert the harness's sandbox and fuel
//! watchdog convert them into findings — without aborting the sweep, and
//! bit-identically across thread counts and fast-path configurations.

use bench::{run_batch, run_batch_cached, Scheduler};
use chipmunk::{test_workload, Stage, TestConfig, TestOutcome, Violation};
use novafs::NovaKind;
use pmem::FaultPlan;
use vfs::{fs::FsOptions, ChaosKind, Op, Workload};

use proptest::prelude::*;

fn chaos_nova(plan: FaultPlan) -> ChaosKind<NovaKind> {
    ChaosKind::new(NovaKind { opts: FsOptions::fixed(), fortis: false }, plan)
}

fn creat_one() -> Workload {
    Workload::new("chaos-creat", vec![Op::Creat { path: "/f".into() }])
}

fn fingerprint(o: &TestOutcome) -> String {
    format!(
        "{:?}|{}|{}|{}|{}|{}|{}|{}|{:?}",
        o.reports,
        o.crash_points,
        o.crash_states,
        o.dedup_hits,
        o.recovery_panics,
        o.recovery_hangs,
        o.sandbox_retries,
        o.fuel_exhausted,
        o.inflight_sizes,
    )
}

/// A panic planted early in every crash-state mount becomes a single
/// deduplicated `recovery-panic` report; the sweep still visits every crash
/// state, and each sandbox finding was re-confirmed on the slow path first.
#[test]
fn mount_panic_becomes_one_report_and_sweep_completes() {
    let kind = chaos_nova(FaultPlan { mount_panic_at: Some(3), ..FaultPlan::none() });
    let out = test_workload(&kind, &creat_one(), &TestConfig::default());
    assert!(out.crash_states > 0, "sweep must still cover the crash states");
    assert!(out.recovery_panics > 0, "every mount panicked");
    assert!(out.sandbox_retries > 0, "fast-path findings must re-check on the slow path");
    assert_eq!(out.recovery_hangs, 0);
    assert_eq!(out.fuel_exhausted, 0);
    assert_eq!(out.reports.len(), 1, "identical panics must dedup: {:?}", out.reports);
    match &out.reports[0].violation {
        Violation::RecoveryPanic { payload, .. } => {
            assert!(payload.contains("injected panic at mount op 3"), "{payload}");
        }
        other => panic!("wrong class: {other:?}"),
    }
}

/// An injected infinite recovery loop trips the deterministic fuel watchdog
/// and becomes a `recovery-hang` finding instead of wedging the suite.
#[test]
fn mount_hang_trips_the_fuel_watchdog() {
    let kind = chaos_nova(FaultPlan { mount_hang_at: Some(3), ..FaultPlan::none() });
    let cfg = TestConfig { recovery_fuel: Some(300_000), ..TestConfig::default() };
    let out = test_workload(&kind, &creat_one(), &cfg);
    assert!(out.crash_states > 0);
    assert!(out.recovery_hangs > 0, "the watchdog must fire");
    assert!(out.fuel_exhausted > 0);
    assert_eq!(out.recovery_panics, 0);
    assert_eq!(out.reports.len(), 1, "{:?}", out.reports);
    match &out.reports[0].violation {
        Violation::RecoveryHang { payload, .. } => {
            assert!(payload.contains("fuel budget of 300000"), "{payload}");
        }
        other => panic!("wrong class: {other:?}"),
    }
}

/// A panic planted in the post-mount tree walk — above the device layer,
/// where `mount_panic_at` cannot reach — surfaces as a single deduplicated
/// `recovery-panic` finding attributed to the Walk stage, and the sweep
/// still visits every crash state.
#[test]
fn walk_panic_becomes_one_walk_stage_report() {
    let kind = chaos_nova(FaultPlan { walk_panic_at: Some(2), ..FaultPlan::none() });
    let out = test_workload(&kind, &creat_one(), &TestConfig::default());
    assert!(out.crash_states > 0, "sweep must still cover the crash states");
    assert!(out.recovery_panics > 0, "every walk panicked");
    assert_eq!(out.recovery_hangs, 0);
    assert_eq!(out.reports.len(), 1, "identical walk panics must dedup: {:?}", out.reports);
    match &out.reports[0].violation {
        Violation::RecoveryPanic { stage, payload } => {
            assert_eq!(*stage, Stage::Walk, "fault fired above mount, inside the walk");
            assert!(payload.contains("injected panic at walk probe 2"), "{payload}");
        }
        other => panic!("wrong class: {other:?}"),
    }
}

/// A walk that spins forever on its n-th probe burns the shared mount+walk
/// fuel budget and is reported as a Walk-stage `recovery-hang`.
#[test]
fn walk_hang_trips_the_fuel_watchdog() {
    let kind = chaos_nova(FaultPlan { walk_hang_at: Some(2), ..FaultPlan::none() });
    let cfg = TestConfig { recovery_fuel: Some(300_000), ..TestConfig::default() };
    let out = test_workload(&kind, &creat_one(), &cfg);
    assert!(out.crash_states > 0);
    assert!(out.recovery_hangs > 0, "the watchdog must fire");
    assert_eq!(out.recovery_panics, 0);
    assert_eq!(out.reports.len(), 1, "{:?}", out.reports);
    match &out.reports[0].violation {
        Violation::RecoveryHang { stage, payload } => {
            assert_eq!(*stage, Stage::Walk);
            assert!(payload.contains("fuel budget of 300000"), "{payload}");
        }
        other => panic!("wrong class: {other:?}"),
    }
}

/// Worker-level fault isolation (a panic while *recording*, outside the
/// per-stage checker sandbox) fails only the affected workload: the other
/// batch items keep their ordinary verdicts. The fault is planted at the
/// smallest op index the short workload survives, so the longer workload —
/// whose record lineage does strictly more device ops — is the only one hit.
#[test]
fn worker_panic_fails_only_the_affected_workload() {
    let short = creat_one();
    let long = Workload::new(
        "chaos-longer",
        vec![
            Op::Creat { path: "/f".into() },
            Op::Mkdir { path: "/d".into() },
            Op::WritePath { path: "/f".into(), off: 0, size: 4096 },
            Op::FsyncPath { path: "/f".into() },
        ],
    );
    let survives = |n: u64| {
        let kind = chaos_nova(FaultPlan { record_panic_at: Some(n), ..FaultPlan::none() });
        let res = run_batch(&kind, std::slice::from_ref(&short), &TestConfig::default());
        res[0].0.reports.iter().all(|r| r.op_desc != "<worker>")
    };
    // Binary-search the short workload's total lineage op count: the fault
    // fires iff its index is <= the ops one mkfs+run performs.
    let mut lo = 1u64; // panics
    let mut hi = 1 << 22; // survives
    assert!(!survives(lo) && survives(hi), "probe bounds must bracket the op count");
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if survives(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let plan = FaultPlan { record_panic_at: Some(hi), ..FaultPlan::none() };
    let batch = vec![long.clone(), short.clone()];

    // Sandbox on, serial: the per-workload guard catches the panic.
    let kind = chaos_nova(plan);
    let serial = run_batch(&kind, &batch, &TestConfig::default());
    // Sandbox off, two shards: the worker thread dies and the join-side
    // requeue re-checks its items one at a time.
    let kind2 = chaos_nova(plan);
    let cfg2 = TestConfig { sandbox: false, ..TestConfig::default() }.with_threads(2);
    let sharded = run_batch(&kind2, &batch, &cfg2);

    for (label, res) in [("serial", &serial), ("sharded", &sharded)] {
        let (hit, _) = &res[0];
        assert_eq!(hit.reports.len(), 1, "{label}: {:?}", hit.reports);
        assert_eq!(hit.reports[0].op_desc, "<worker>", "{label}");
        assert_eq!(hit.reports[0].violation.class(), "recovery-panic", "{label}");
        assert!(
            hit.reports[0].violation.detail().contains("injected panic at record op"),
            "{label}: {}",
            hit.reports[0].violation.detail()
        );
        assert_eq!(hit.recovery_panics, 1, "{label}");
        let (ok, _) = &res[1];
        assert!(
            ok.reports.iter().all(|r| r.op_desc != "<worker>"),
            "{label}: unaffected workload must keep its ordinary verdict: {:?}",
            ok.reports
        );
        assert!(ok.crash_states > 0, "{label}: unaffected workload must be fully checked");
    }
}

/// A torn 8-byte store during recording never aborts the sweep and yields
/// bit-identical outcomes at any thread count.
#[test]
fn torn_store_sweep_is_deterministic() {
    let plan = FaultPlan { torn_store_at: Some(9), ..FaultPlan::none() };
    let mut prints = Vec::new();
    for threads in [1usize, 4] {
        let kind = chaos_nova(plan);
        let cfg = TestConfig::default().with_threads(threads);
        let res = run_batch(&kind, &[creat_one()], &cfg);
        prints.push(fingerprint(&res[0].0));
    }
    assert_eq!(prints[0], prints[1], "torn-store outcomes must not depend on threads");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A mount-path panic at an arbitrary op index never aborts the sweep,
    /// dedups to at most one report per (stage, op_seq), and the whole
    /// outcome — reports and every counter — is bit-identical across
    /// `{threads 1, 8} × {prefix_cache on, off}`.
    #[test]
    fn mount_fault_matrix_is_byte_identical(op in 1u64..200) {
        let plan = FaultPlan { mount_panic_at: Some(op), ..FaultPlan::none() };
        // Workloads sharing a first op, so the prefix cache genuinely
        // engages in the cells that enable it.
        let ws = vec![
            Workload::new("chaos-a", vec![
                Op::Mkdir { path: "/d".into() },
                Op::Creat { path: "/d/a".into() },
            ]),
            Workload::new("chaos-b", vec![
                Op::Mkdir { path: "/d".into() },
                Op::Creat { path: "/d/b".into() },
            ]),
        ];
        let mut cells: Vec<(String, Vec<String>)> = Vec::new();
        for threads in [1usize, 8] {
            for prefix_cache in [true, false] {
                let kind = chaos_nova(plan);
                let cfg = TestConfig { prefix_cache, ..TestConfig::default().with_threads(threads) };
                let mut sched = Scheduler::new(&kind, &cfg);
                let res = run_batch_cached(&kind, &ws, &cfg, Some(&mut sched));
                for (o, _) in &res {
                    prop_assert!(o.crash_states > 0, "sweep must complete");
                    // Dedup leaves at most one report per (stage, op_seq)
                    // pair for a fixed injected fault.
                    for i in 0..o.reports.len() {
                        for j in i + 1..o.reports.len() {
                            let (a, b) = (&o.reports[i], &o.reports[j]);
                            prop_assert!(
                                a.op_seq != b.op_seq || a.violation != b.violation,
                                "duplicate report survived dedup: {a:?}"
                            );
                        }
                    }
                    if o.recovery_panics > 0 {
                        prop_assert!(
                            o.reports.iter().any(|r| r.violation.class() == "recovery-panic"),
                            "a fired fault must be reported"
                        );
                    }
                }
                cells.push((
                    format!("threads={threads} prefix_cache={prefix_cache}"),
                    res.iter().map(|(o, _)| fingerprint(o)).collect(),
                ));
            }
        }
        let (base_label, base) = &cells[0];
        for (label, prints) in &cells[1..] {
            prop_assert_eq!(base, prints, "{} diverged from {}", label, base_label);
        }
    }
}
