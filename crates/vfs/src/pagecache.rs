//! The volatile page cache — shared "kernel" infrastructure.
//!
//! The DAX-mode controls (ext4-DAX, XFS-DAX) keep their disk-era
//! architecture: every read and write goes through DRAM pages, and
//! persistent media is only touched when a commit point (fsync-family call)
//! writes data blocks in place and metadata blocks through a journal. Both
//! file systems use this cache, just as they share the Linux page cache;
//! it tracks which blocks are dirty and whether they are metadata
//! (journaled) or file data (written in place, ordered mode).

use pmem::{FxHashMap, PmBackend};

/// Cache block size (one page).
pub const BLOCK: u64 = 4096;

/// Classification of a cached block, deciding its commit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockClass {
    /// Journaled at commit: superblock, bitmap, inode table, directory
    /// data, indirect and xattr blocks.
    Meta,
    /// Written in place before the journal commits (ordered mode).
    Data,
}

#[derive(Debug, Clone)]
struct Page {
    buf: Box<[u8]>,
    dirty: bool,
    class: BlockClass,
}

/// A write-back page cache over device blocks.
#[derive(Debug, Clone, Default)]
pub struct PageCache {
    pages: FxHashMap<u64, Page>,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PageCache::default()
    }

    fn load<D: PmBackend>(&mut self, dev: &D, blk: u64, class: BlockClass) -> &mut Page {
        self.pages.entry(blk).or_insert_with(|| {
            let mut buf = vec![0u8; BLOCK as usize].into_boxed_slice();
            dev.read(blk * BLOCK, &mut buf);
            Page { buf, dirty: false, class }
        })
    }

    /// Reads `buf.len()` bytes from block `blk` at `off` within the block.
    pub fn read<D: PmBackend>(&mut self, dev: &D, blk: u64, off: u64, buf: &mut [u8]) {
        debug_assert!(off + buf.len() as u64 <= BLOCK);
        let p = self.load(dev, blk, BlockClass::Meta);
        buf.copy_from_slice(&p.buf[off as usize..off as usize + buf.len()]);
    }

    /// Writes into block `blk` at `off`, marking it dirty with `class`.
    pub fn write<D: PmBackend>(
        &mut self,
        dev: &D,
        blk: u64,
        off: u64,
        data: &[u8],
        class: BlockClass,
    ) {
        debug_assert!(off + data.len() as u64 <= BLOCK);
        let p = self.load(dev, blk, class);
        p.buf[off as usize..off as usize + data.len()].copy_from_slice(data);
        p.dirty = true;
        p.class = class;
    }

    /// Reads a little-endian u64.
    pub fn read_u64<D: PmBackend>(&mut self, dev: &D, blk: u64, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(dev, blk, off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian u64 with the given class.
    pub fn write_u64<D: PmBackend>(
        &mut self,
        dev: &D,
        blk: u64,
        off: u64,
        v: u64,
        class: BlockClass,
    ) {
        self.write(dev, blk, off, &v.to_le_bytes(), class);
    }

    /// Zero-fills a whole block in cache (marking it dirty) without reading
    /// it from the device first.
    pub fn zero_block(&mut self, blk: u64, class: BlockClass) {
        self.pages.insert(
            blk,
            Page { buf: vec![0u8; BLOCK as usize].into_boxed_slice(), dirty: true, class },
        );
    }

    /// Whole-block contents (loading on miss).
    pub fn block<D: PmBackend>(&mut self, dev: &D, blk: u64) -> &[u8] {
        &self.load(dev, blk, BlockClass::Meta).buf
    }

    /// Cached contents of `blk` without loading on miss (for `&self`
    /// readers, which fall back to the device themselves).
    pub fn peek(&self, blk: u64) -> Option<&[u8]> {
        self.pages.get(&blk).map(|p| &*p.buf)
    }

    /// Dirty blocks of the given class, sorted by block number.
    pub fn dirty_of(&self, class: BlockClass) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.dirty && p.class == class)
            .map(|(&b, _)| b)
            .collect();
        v.sort_unstable();
        v
    }

    /// Whether the given block is dirty.
    pub fn is_dirty(&self, blk: u64) -> bool {
        self.pages.get(&blk).is_some_and(|p| p.dirty)
    }

    /// Marks a block clean after it has been committed.
    pub fn mark_clean(&mut self, blk: u64) {
        if let Some(p) = self.pages.get_mut(&blk) {
            p.dirty = false;
        }
    }

    /// Drops a block from the cache entirely (used when freeing it).
    pub fn evict(&mut self, blk: u64) {
        self.pages.remove(&blk);
    }

    /// Number of dirty blocks.
    pub fn dirty_count(&self) -> usize {
        self.pages.values().filter(|p| p.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmDevice;

    #[test]
    fn cache_reads_through_and_buffers_writes() {
        let mut dev = PmDevice::new(16 * BLOCK);
        dev.store(2 * BLOCK, b"on-media");
        let mut c = PageCache::new();
        let mut buf = [0u8; 8];
        c.read(&dev, 2, 0, &mut buf);
        assert_eq!(&buf, b"on-media");
        c.write(&dev, 2, 0, b"buffered", BlockClass::Data);
        c.read(&dev, 2, 0, &mut buf);
        assert_eq!(&buf, b"buffered");
        // The device itself is untouched.
        let mut raw = [0u8; 8];
        dev.read(2 * BLOCK, &mut raw);
        assert_eq!(&raw, b"on-media");
    }

    #[test]
    fn dirty_tracking_by_class() {
        let dev = PmDevice::new(16 * BLOCK);
        let mut c = PageCache::new();
        c.write(&dev, 1, 0, b"m", BlockClass::Meta);
        c.write(&dev, 5, 0, b"d", BlockClass::Data);
        assert_eq!(c.dirty_of(BlockClass::Meta), vec![1]);
        assert_eq!(c.dirty_of(BlockClass::Data), vec![5]);
        c.mark_clean(5);
        assert!(c.dirty_of(BlockClass::Data).is_empty());
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn zero_block_skips_device_read() {
        let mut dev = PmDevice::new(16 * BLOCK);
        dev.store(3 * BLOCK, &[0xff; 16]);
        let mut c = PageCache::new();
        c.zero_block(3, BlockClass::Data);
        let mut buf = [0u8; 16];
        c.read(&dev, 3, 0, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert!(c.is_dirty(3));
    }
}
