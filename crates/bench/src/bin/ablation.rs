//! Ablation study of Chipmunk's crash-state design choices (§3.3,
//! Observation 7): what does each mechanism buy?
//!
//! Four configurations re-hunt every ACE-findable bug with `stop_on_first`:
//!
//! * **baseline** — size-ordered subsets, data-write coalescing, usability
//!   probe (the paper's configuration);
//! * **no-coalesce** — every non-temporal store replayed as its own write:
//!   expect the same bugs found at the cost of many more crash states (the
//!   paper: splitting a data memcpy "adds states without adding bugs");
//! * **no-probe** — skip the create/delete usability probe: expect
//!   unusable-but-superficially-consistent states (undeletable files) to
//!   take longer or escape;
//! * **large-first** — enumerate big subsets before small ones: expect the
//!   same bugs but far more states examined before the find (Observation 7:
//!   buggy crash states usually involve few writes, so small-first wins).
//!
//! ```sh
//! cargo run --release -p bench --bin ablation
//! ```

use bench::hunt_with_ace;
use chipmunk::TestConfig;
use vfs::bugs::bug_table;

struct Row {
    name: &'static str,
    cfg: TestConfig,
}

fn main() {
    let base = TestConfig { stop_on_first: true, ..TestConfig::default() };
    let rows = [
        Row { name: "baseline", cfg: base.clone() },
        Row { name: "no-coalesce", cfg: TestConfig { coalesce_data: false, ..base.clone() } },
        Row { name: "no-probe", cfg: TestConfig { probe: false, ..base.clone() } },
        Row {
            name: "large-first",
            cfg: TestConfig { large_first_subsets: true, ..base.clone() },
        },
    ];

    println!("ablation of crash-state construction (ACE-findable corpus, stop-on-first)\n");
    println!(
        "{:<12} {:>6} {:>14} {:>18}",
        "config", "found", "total states", "mean states/find"
    );
    println!("{}", "-".repeat(54));
    for row in &rows {
        let mut found = 0u64;
        let mut total_states = 0u64;
        let mut find_states = 0u64;
        for info in bug_table() {
            if !info.ace_findable {
                continue;
            }
            let (hit, _wl, states) = hunt_with_ace(info.id, &row.cfg, 200);
            total_states += states;
            if let Some(r) = hit {
                found += 1;
                find_states += r.states;
            }
        }
        println!(
            "{:<12} {:>6} {:>14} {:>18.1}",
            row.name,
            found,
            total_states,
            find_states as f64 / found.max(1) as f64
        );
    }
    println!();
    println!("expected shape: no-coalesce finds the same bugs over more states;");
    println!("dropping the probe loses the unusable-state finding tree walks can't");
    println!("see (and burns that hunt's whole budget). Subset order barely moves");
    println!("the ACE numbers because metadata ops keep 1-3 writes in flight");
    println!("(Observation 7) — ordering only pays on deep data ops.");
}
