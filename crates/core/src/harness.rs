//! The top-level test harness: record, replay, check (§3.3, Figure 2).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pmem::{write_delta, CowDevice, ImageKey, PmDevice};
use pmlog::{LogEntry, LogHandle, LoggingPm, Marker, OpRecord};
use vfs::{
    fs::SyscallKind,
    BugId, FsKind, Workload,
};

use crate::{
    checker::{probe_state, walk_scope, CheckKind, DataRelax},
    config::TestConfig,
    crashgen::{
        apply_subset, coalesce, data_shadowing_unsafe, describe_subset,
        enumerate_subsets_ordered,
        PendingWrite, SigCache, SubsetWalker,
    },
    exec::{Executor, OpResult},
    footprint::{FpSet, FP_MIN_STATES, FP_WORD_CAP},
    oracle::{alias_set, build_oracle, op_paths, Oracle, Scope, Tree},
    report::{BugReport, CrashPhase, Stage, Violation},
    sandbox,
};

/// Wall time spent in each stage of the pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Stage 1: the crash-free oracle run.
    pub oracle: Duration,
    /// Stage 2: the recorded run through the write logger.
    pub record: Duration,
    /// Stage 3: crash-state construction and checking.
    pub check: Duration,
}

/// Everything a test run produced.
#[derive(Debug, Clone, Default)]
pub struct TestOutcome {
    /// Detected violations (deduplicated within the run, capped).
    pub reports: Vec<BugReport>,
    /// Number of crash points visited (fences + syscall boundaries).
    pub crash_points: u64,
    /// Number of crash states constructed and checked.
    pub crash_states: u64,
    /// Of `crash_states`, how many reused an earlier check's result because
    /// their replayed bytes produced an identical image (see
    /// [`TestConfig::dedup`]).
    pub dedup_hits: u64,
    /// Of `crash_states`, how many reused the mount/walk/probe artifacts of
    /// an identical image first seen at an *earlier crash point* (see
    /// [`TestConfig::cross_dedup`]); the oracle comparison still ran.
    pub memo_hits: u64,
    /// How many times this workload resumed from a cached execution prefix
    /// instead of re-running mkfs and the shared ops (see
    /// [`TestConfig::prefix_cache`]; only the batched runners populate it).
    pub prefix_hits: u64,
    /// Total operations (oracle + record, counted once each) skipped by
    /// prefix-cache resumes.
    pub prefix_ops_saved: u64,
    /// Prefix subtrees the scheduler partitioned this workload's batch into.
    /// Set on the first outcome of each scheduled batch (0 elsewhere), so
    /// summing over outcomes gives the total across batches. A pure function
    /// of the batch contents — identical for every thread count.
    pub sched_subtrees: u64,
    /// Deepest op prefix shared within any subtree of this workload's batch
    /// (same first-outcome convention as `sched_subtrees`).
    pub sched_subtree_max_depth: u64,
    /// Crash states whose committed verdict was a
    /// [`Violation::RecoveryPanic`] — the file system panicked while the
    /// sandbox was checking the state (see [`TestConfig::sandbox`]).
    pub recovery_panics: u64,
    /// Crash states whose committed verdict was a
    /// [`Violation::RecoveryHang`] — the deterministic fuel watchdog fired
    /// (see [`TestConfig::recovery_fuel`]).
    pub recovery_hangs: u64,
    /// Crash states re-checked once on the slow full-walk fresh-device path
    /// because a panic/hang was first seen under a fast path
    /// (`prefix_cache`/`delta_replay`/`scoped_check`/`cross_dedup`), so
    /// fast-path artifacts are never mislabeled as FS bugs.
    pub sandbox_retries: u64,
    /// Crash states whose check hit fuel exhaustion at any point, including
    /// hangs that the slow-path re-check subsequently cleared.
    pub fuel_exhausted: u64,
    /// Node comparisons the oracle diffs skipped because the two nodes'
    /// content hashes matched (see [`TestConfig::shared_oracle`]). Like the
    /// other per-state counters this is committed in canonical order, so it
    /// is identical at every thread count for a fixed configuration.
    pub oracle_subtrees_pruned: u64,
    /// File-data bytes oracle snapshots shared with their predecessor
    /// instead of re-reading and re-storing (see
    /// [`TestConfig::shared_oracle`]; 0 with the knob off).
    pub oracle_snap_bytes_shared: u64,
    /// Behavioral classes created by representative-state checking (see
    /// [`TestConfig::rep_check`]): each counts one state that was checked on
    /// the full path as its class's representative.
    pub rep_classes: u64,
    /// Crash states skipped because their behavioral class already had a
    /// violation-free representative; they commit a synthesized clean
    /// verdict without mounting.
    pub rep_skipped: u64,
    /// Crash states force-checked because their class's representative (or a
    /// later checked member) reported a violation — the class expanded back
    /// to exhaustive checking.
    pub rep_expansions: u64,
    /// Host-I/O retries performed while persisting this outcome. Always 0
    /// from the in-memory harness (it touches no host storage); the slot
    /// exists so host-level tooling (the campaign store's fault-injected
    /// persistence layer) can fold its retry counts through the same
    /// counter pipeline as every other statistic.
    pub io_retries: u64,
    /// Committed artifacts quarantined as corrupt while persisting this
    /// outcome. Always 0 from the in-memory harness; see
    /// [`TestOutcome::io_retries`].
    pub tasks_quarantined: u64,
    /// 1 when the persistence layer entered read-only degraded mode
    /// (ENOSPC) during this outcome. Always 0 from the in-memory harness;
    /// see [`TestOutcome::io_retries`].
    pub degraded_mode: u64,
    /// In-flight write counts observed at each crash point (before
    /// coalescing) — the data behind Observation 7.
    pub inflight_sizes: Vec<usize>,
    /// Content keys (folded to 64 bits) of every committed crash state, in
    /// canonical commit order — one entry per `crash_states` increment.
    /// Populated only under [`TestConfig::collect_state_keys`]; the campaign
    /// store ORs them into its persistent per-FS crash-state bitmaps.
    pub state_keys: Vec<u64>,
    /// Injected-bug code paths that executed during the run (ground truth
    /// for attribution; detection never uses this).
    pub traced_bugs: BTreeSet<BugId>,
    /// Per-phase wall times.
    pub timing: PhaseTimings,
    /// The workload name.
    pub workload: String,
}

impl TestOutcome {
    /// Whether any violation was found.
    pub fn found_bug(&self) -> bool {
        !self.reports.is_empty()
    }
}

const MAX_REPORTS: usize = 200;

pub(crate) fn push_report(out: &mut TestOutcome, report: BugReport) {
    if out.reports.len() >= MAX_REPORTS {
        return;
    }
    // Exact-duplicate suppression (same op + same violation).
    if out
        .reports
        .iter()
        .any(|r| r.op_seq == report.op_seq && r.violation == report.violation)
    {
        return;
    }
    out.reports.push(report);
}

/// Runs the full Chipmunk pipeline on one workload:
///
/// 1. oracle run (crash-free, snapshots around every op);
/// 2. recorded run through the write logger;
/// 3. crash-state construction and checking at every crash point.
pub fn test_workload<K: FsKind>(kind: &K, workload: &Workload, cfg: &TestConfig) -> TestOutcome {
    let mut out = TestOutcome { workload: workload.name.clone(), ..Default::default() };
    let guarantees = kind.guarantees();
    kind.options().trace.clear();

    // ---- 1. Oracle ----
    let t_oracle = Instant::now();
    let oracle = match build_oracle(kind, workload, cfg) {
        Ok(o) => o,
        Err(e) => {
            push_report(
                &mut out,
                BugReport {
                    workload: workload.name.clone(),
                    op_seq: 0,
                    op_desc: "(oracle run)".into(),
                    phase: CrashPhase::DuringSyscall,
                    subset: "-".into(),
                    point: None,
                    subset_ids: Vec::new(),
                    violation: Violation::RuntimeError(format!("oracle run failed: {e}")),
                },
            );
            return out;
        }
    };

    out.timing.oracle = t_oracle.elapsed();
    out.oracle_snap_bytes_shared = oracle.snap_bytes_shared;

    // ---- 2. Recorded run ----
    let t_record = Instant::now();
    let log = LogHandle::new();
    let dev = PmDevice::new(cfg.device_size);
    let lp = if cfg.eadr {
        LoggingPm::new_eadr(dev, log.clone())
    } else {
        LoggingPm::new(dev, log.clone())
    };
    let mut fs = match kind.mkfs(lp) {
        Ok(fs) => fs,
        Err(e) => {
            push_report(
                &mut out,
                BugReport {
                    workload: workload.name.clone(),
                    op_seq: 0,
                    op_desc: "(mkfs)".into(),
                    phase: CrashPhase::DuringSyscall,
                    subset: "-".into(),
                    point: None,
                    subset_ids: Vec::new(),
                    violation: Violation::RuntimeError(format!("mkfs failed: {e}")),
                },
            );
            return out;
        }
    };
    let mut ex = Executor::new();
    let mut rec_results = Vec::with_capacity(workload.ops.len());
    for (seq, op) in workload.ops.iter().enumerate() {
        log.marker(Marker::SyscallBegin(OpRecord { seq, desc: op.describe() }));
        let r = ex.exec(&mut fs, op, seq);
        log.marker(Marker::SyscallEnd { seq, ok: r.result.is_ok() });
        rec_results.push(r);
    }
    drop(fs);
    let log = log.take();
    out.timing.record = t_record.elapsed();

    // Functional divergence between the recorded run and the oracle, and
    // non-benign runtime errors, are reported even though they are not
    // crash-consistency violations (§4.4, non-crash-consistency bugs).
    for (seq, (rec, ora)) in rec_results.iter().zip(oracle.results.iter()).enumerate() {
        let desc = workload.ops[seq].describe();
        if let Err(e) = &rec.result {
            if !e.is_benign() {
                push_report(
                    &mut out,
                    BugReport {
                        workload: workload.name.clone(),
                        op_seq: seq,
                        op_desc: desc.clone(),
                        phase: CrashPhase::DuringSyscall,
                        subset: "-".into(),
                        point: None,
                        subset_ids: Vec::new(),
                        violation: Violation::RuntimeError(e.to_string()),
                    },
                );
            }
        }
        if rec.result.is_ok() != ora.result.is_ok() {
            push_report(
                &mut out,
                BugReport {
                    workload: workload.name.clone(),
                    op_seq: seq,
                    op_desc: desc,
                    phase: CrashPhase::DuringSyscall,
                    subset: "-".into(),
                    point: None,
                    subset_ids: Vec::new(),
                    violation: Violation::OracleDivergence(format!(
                        "recorded run returned {:?}, oracle returned {:?}",
                        rec.result, ora.result
                    )),
                },
            );
        }
    }

    // ---- 3. Replay and check ----
    let t_check = Instant::now();
    replay_and_check(kind, workload, cfg, &oracle, &rec_results, &log, guarantees, &mut out);
    out.timing.check = t_check.elapsed();

    out.traced_bugs = kind.options().trace.snapshot();
    out
}

/// Picks the data-relaxation mode for a mid-syscall atomicity check: data
/// writes may legally be torn (or must be all-or-nothing when the FS claims
/// atomic data writes), and the path-addressed `fallocate` bundles an
/// `O_CREAT` open, so the created-but-empty intermediate state is allowed.
fn atomicity_relax<'a>(
    op: &vfs::Op,
    target: Option<&'a str>,
    guarantees: vfs::Guarantees,
) -> DataRelax<'a> {
    let is_data = matches!(op.kind(), SyscallKind::Write | SyscallKind::Pwrite);
    let is_falloc = matches!(op.kind(), SyscallKind::Falloc);
    match (target, is_data) {
        (Some(t), true) if guarantees.atomic_data_writes => DataRelax::Atomic(t),
        (Some(t), true) => DataRelax::Torn(t),
        (Some(t), false) if is_falloc => DataRelax::Atomic(t),
        _ => DataRelax::None,
    }
}

/// The paths a crash point's in-flight writes can legally affect: the
/// targets of every op with writes still pending plus the current op, their
/// parent directories, and hard-link aliases in the bracketing oracle
/// trees. Any op whose footprint cannot be named (`sync`, an unresolved
/// slot) widens the scope to `Full`.
fn crash_scope(
    workload: &Workload,
    rec_results: &[OpResult],
    oracle: &Oracle,
    seq: usize,
    pending_seqs: &BTreeSet<usize>,
    pending_unknown: bool,
    cfg: &TestConfig,
) -> Scope {
    if !cfg.scoped_check || pending_unknown {
        return Scope::Full;
    }
    let mut set = BTreeSet::new();
    for s in pending_seqs.iter().copied().chain(std::iter::once(seq)) {
        let op = &workload.ops[s];
        let target = rec_results[s].target.as_deref();
        let Some(paths) = op_paths(op, target) else { return Scope::Full };
        for p in paths {
            insert_with_parent(&mut set, p);
            for tree in [oracle.before(s), oracle.after(s)] {
                for a in alias_set(tree, p) {
                    insert_with_parent(&mut set, &a);
                }
            }
        }
    }
    Scope::Paths(set)
}

fn insert_with_parent(set: &mut BTreeSet<String>, p: &str) {
    set.insert(p.to_string());
    if let Some(idx) = p.rfind('/') {
        set.insert(if idx == 0 { "/".to_string() } else { p[..idx].to_string() });
    }
}

#[allow(clippy::too_many_arguments)]
fn replay_and_check<K: FsKind>(
    kind: &K,
    workload: &Workload,
    cfg: &TestConfig,
    oracle: &Oracle,
    rec_results: &[OpResult],
    log: &pmlog::Log,
    guarantees: vfs::Guarantees,
    out: &mut TestOutcome,
) {
    let mut engine = ReplayEngine::new(kind, workload, cfg, oracle, rec_results, guarantees);
    for entry in log.entries() {
        if engine.stop {
            // Replaying to completion is unnecessary once stopping.
            break;
        }
        engine.step(entry, Some(out));
    }
}

/// The crash-state construction and checking stage as a resumable machine:
/// [`step`](ReplayEngine::step) consumes one log entry at a time, so the
/// prefix cache can fast-forward through a shared prefix (checkpointed
/// counters stand in for the skipped checks), snapshot the mutable state at
/// any syscall boundary, and hand the suffix to a later workload.
pub(crate) struct ReplayEngine<'a, K: FsKind> {
    kind: &'a K,
    workload: &'a Workload,
    cfg: &'a TestConfig,
    oracle: &'a Oracle,
    rec_results: &'a [OpResult],
    guarantees: vfs::Guarantees,
    /// The last-known-persistent image (all pending writes drained).
    pub base: Vec<u8>,
    /// Incremental content hash of `base`.
    pub base_key: ImageKey,
    /// Cross-point artifact memo ([`TestConfig::cross_dedup`]).
    pub memo: CrossMemo,
    /// In-flight writes since the last fence.
    pub pending: Vec<PendingWrite>,
    /// Writes absorbed into `base` (fences crossed, or eADR stores applied)
    /// since the current op began — cleared at every `SyscallBegin`. The
    /// behavioral signature hashes these alongside a state's subset so the
    /// signature is anchored at the base image *as of op start*: the state
    /// after fence `k` absorbs signs identically whether its writes are
    /// still pending or already in `base`. Kept in the same
    /// coalesced/uncoalesced form the subset enumeration uses.
    pub op_absorbed: Vec<PendingWrite>,
    /// Behavioral class table ([`TestConfig::rep_check`]).
    pub rep: RepTable,
    /// Which ops still have writes in `pending` (for scope computation).
    pub pending_seqs: BTreeSet<usize>,
    /// Whether any pending write predates the first marker.
    pub pending_unknown: bool,
    cur_op: Option<usize>,
    /// The last completed op.
    pub last_done: Option<usize>,
    /// Whether the first syscall marker has been seen (mkfs writes precede
    /// it and are never crash points).
    pub started: bool,
    /// Stop-on-first fired; no further entries should be fed.
    pub stop: bool,
    /// When set, every mutation of `base` records `(off, old bytes)` here so
    /// the caller can roll the image back (the prefix cache's base tape).
    pub undo: Option<Vec<(u64, Vec<u8>)>>,
    /// When set, the engine is in single-state mode: crash points are only
    /// counted until the target ordinal is reached, where exactly one subset
    /// state is built and checked (see [`check_one_state`]).
    single: Option<SingleTarget>,
}

/// Target and result slot for the engine's single-state mode.
struct SingleTarget {
    point: u64,
    subset: Vec<usize>,
    result: Option<StateProbe>,
    error: Option<String>,
}

/// The verdict of replaying exactly one crash state (see [`check_one_state`]).
#[derive(Debug, Clone)]
pub struct StateProbe {
    /// The check's verdict (`None`: the state is consistent).
    pub violation: Option<Violation>,
    /// Index of the system call the crash point belongs to.
    pub op_seq: usize,
    /// Description of that system call.
    pub op_desc: String,
    /// Crash point position.
    pub phase: CrashPhase,
    /// Number of (coalesced) in-flight writes at the point — the universe
    /// the subset indexes into.
    pub n_writes: usize,
}

impl<'a, K: FsKind> ReplayEngine<'a, K> {
    pub fn new(
        kind: &'a K,
        workload: &'a Workload,
        cfg: &'a TestConfig,
        oracle: &'a Oracle,
        rec_results: &'a [OpResult],
        guarantees: vfs::Guarantees,
    ) -> Self {
        ReplayEngine {
            kind,
            workload,
            cfg,
            oracle,
            rec_results,
            guarantees,
            // The all-zero image hashes to 0.
            base: vec![0u8; cfg.device_size as usize],
            base_key: 0,
            memo: CrossMemo::default(),
            pending: Vec::new(),
            op_absorbed: Vec::new(),
            rep: RepTable::default(),
            pending_seqs: BTreeSet::new(),
            pending_unknown: false,
            cur_op: None,
            last_done: None,
            started: false,
            stop: false,
            undo: None,
            single: None,
        }
    }

    /// Applies one write to `base`, maintaining the incremental hash and the
    /// undo tape.
    fn apply_base(&mut self, off: u64, data: &[u8]) {
        let o = off as usize;
        self.base_key ^= write_delta(off, &self.base[o..o + data.len()], data);
        if let Some(u) = &mut self.undo {
            u.push((off, self.base[o..o + data.len()].to_vec()));
        }
        self.base[o..o + data.len()].copy_from_slice(data);
    }

    fn scope_for(&self, seq: usize) -> Scope {
        crash_scope(
            self.workload,
            self.rec_results,
            self.oracle,
            seq,
            &self.pending_seqs,
            self.pending_unknown,
            self.cfg,
        )
    }

    /// Consumes one log entry. With `out` present, crash points are visited
    /// and results committed into it; with `None` the entry only advances
    /// the replay state (fast-forward through an already-checked prefix).
    pub fn step(&mut self, entry: &LogEntry, out: Option<&mut TestOutcome>) {
        match entry {
            LogEntry::Marker(Marker::SyscallBegin(OpRecord { seq, .. })) => {
                self.started = true;
                self.cur_op = Some(*seq);
                self.op_absorbed.clear();
            }
            LogEntry::Marker(Marker::SyscallEnd { seq, .. }) => {
                self.cur_op = None;
                self.last_done = Some(*seq);
                let op = &self.workload.ops[*seq];
                if !op.is_mutating() {
                    return;
                }
                let Some(out) = out else { return };
                if self.guarantees.strong {
                    let check = CheckKind::Synchrony { cur: self.oracle.after(*seq) };
                    self.visit(*seq, CrashPhase::AfterSyscall, &check, true, false, out);
                } else if matches!(op.kind(), SyscallKind::Fsync | SyscallKind::Sync) {
                    let target = self.rec_results[*seq].target.as_deref();
                    let target = if op.kind() == SyscallKind::Sync { None } else { target };
                    let check = CheckKind::WeakFsync { cur: self.oracle.after(*seq), target };
                    self.visit(*seq, CrashPhase::AfterFsync, &check, true, false, out);
                }
            }
            LogEntry::Fence => {
                if self.cfg.eadr {
                    // eADR: fences are pure ordering points. Every store has
                    // already been visited as its own crash state, and the
                    // state at the fence equals the state after the last
                    // store, so there is nothing new to check here.
                    return;
                }
                if self.started && self.guarantees.strong && !self.pending.is_empty() {
                    if let Some(out) = out {
                        match self.cur_op {
                            Some(seq) => {
                                let relax = atomicity_relax(
                                    &self.workload.ops[seq],
                                    self.rec_results[seq].target.as_deref(),
                                    self.guarantees,
                                );
                                let check = CheckKind::Atomicity {
                                    prev: self.oracle.before(seq),
                                    cur: self.oracle.after(seq),
                                    relax,
                                };
                                self.visit(
                                    seq, CrashPhase::DuringSyscall, &check, false, false, out,
                                );
                            }
                            None => {
                                // Fence between syscalls (e.g. deferred
                                // work): the state must still be the
                                // post-state of the last completed op.
                                if let Some(seq) = self.last_done {
                                    let check =
                                        CheckKind::Synchrony { cur: self.oracle.after(seq) };
                                    self.visit(
                                        seq, CrashPhase::AfterSyscall, &check, false, false, out,
                                    );
                                }
                            }
                        }
                    }
                }
                let pending = std::mem::take(&mut self.pending);
                for w in &pending {
                    self.apply_base(w.off, &w.data);
                }
                // Absorbed writes keep contributing to behavioral signatures
                // (in the same shape the subset enumeration saw them) until
                // the next op begins.
                if self.cfg.coalesce_data {
                    self.op_absorbed.extend(coalesce(&pending));
                } else {
                    self.op_absorbed.extend(pending);
                }
                self.pending_seqs.clear();
                self.pending_unknown = false;
            }
            e => {
                let Some(w) = PendingWrite::from_entry(e) else { return };
                if self.cfg.eadr {
                    // Persistent caches: durable the moment it lands, and the
                    // instant after any store is a real crash state — not
                    // just fence boundaries. (A torn in-place update is only
                    // visible *between* the stores that make it up; see bug
                    // 19.)
                    self.apply_base(w.off, &w.data);
                    self.op_absorbed.push(w);
                    if self.started && self.guarantees.strong {
                        let Some(out) = out else { return };
                        match self.cur_op {
                            Some(seq) if self.workload.ops[seq].is_mutating() => {
                                let relax = atomicity_relax(
                                    &self.workload.ops[seq],
                                    self.rec_results[seq].target.as_deref(),
                                    self.guarantees,
                                );
                                let check = CheckKind::Atomicity {
                                    prev: self.oracle.before(seq),
                                    cur: self.oracle.after(seq),
                                    relax,
                                };
                                self.visit(seq, CrashPhase::DuringSyscall, &check, true, true, out);
                            }
                            None => {
                                // Deferred work between syscalls: the durable
                                // state must still match the post-state of
                                // the last completed op.
                                if let Some(seq) = self.last_done {
                                    let check =
                                        CheckKind::Synchrony { cur: self.oracle.after(seq) };
                                    self.visit(
                                        seq, CrashPhase::AfterSyscall, &check, true, true, out,
                                    );
                                }
                            }
                            _ => {}
                        }
                    }
                } else {
                    match self.cur_op.or(self.last_done) {
                        Some(s) => {
                            self.pending_seqs.insert(s);
                        }
                        None => self.pending_unknown = true,
                    }
                    self.pending.push(w);
                }
            }
        }
    }

    /// Visits one crash point (the base image plus, unless `no_pending`, the
    /// enumerated subsets of the in-flight writes).
    fn visit(
        &mut self,
        seq: usize,
        phase: CrashPhase,
        check: &CheckKind<'_>,
        check_base: bool,
        no_pending: bool,
        out: &mut TestOutcome,
    ) {
        if self.single.is_some() {
            self.visit_single(seq, phase, check, no_pending, out);
            return;
        }
        let scope = self.scope_for(seq);
        let pending: &[PendingWrite] = if no_pending { &[] } else { &self.pending };
        // Torn-data drop precondition (see [`crashgen::behavior_sig`]): the
        // check tolerates any old/new/zero byte mix in the written file, the
        // FS cannot turn torn data into a read error, and every in-flight
        // write is attributable to the relaxed op (a leftover unfenced write
        // from an earlier op could belong to a different, exactly-compared
        // file). `visit_crash_point` still vetoes it if data writes shadow
        // each other at this point.
        let torn_drop = self.cfg.rep_check
            && matches!(check, CheckKind::Atomicity { relax: DataRelax::Torn(_), .. })
            && !self.guarantees.data_checksums
            && !self.pending_unknown
            && self.pending_seqs.iter().all(|&s| s == seq);
        visit_crash_point(
            self.kind,
            self.workload,
            self.cfg,
            &self.base,
            self.base_key,
            pending,
            &self.op_absorbed,
            seq,
            phase,
            check,
            check_base,
            torn_drop,
            &scope,
            &mut self.memo,
            &mut self.rep,
            out,
            &mut self.stop,
        );
    }

    /// Single-state mode: counts crash points exactly like
    /// [`visit_crash_point`] does, and at the target ordinal builds and
    /// checks the one requested subset state instead of enumerating.
    fn visit_single(
        &mut self,
        seq: usize,
        phase: CrashPhase,
        check: &CheckKind<'_>,
        no_pending: bool,
        out: &mut TestOutcome,
    ) {
        out.crash_points += 1;
        let ordinal = out.crash_points - 1;
        let tgt = self.single.as_ref().expect("single mode");
        if ordinal != tgt.point {
            return;
        }
        let pending: &[PendingWrite] = if no_pending { &[] } else { &self.pending };
        let writes = if self.cfg.coalesce_data { coalesce(pending) } else { pending.to_vec() };
        let subset = tgt.subset.clone();
        if let Some(&bad) = subset.iter().find(|&&i| i >= writes.len()) {
            let tgt = self.single.as_mut().expect("single mode");
            tgt.error = Some(format!(
                "subset index {bad} out of range ({} in-flight writes at point {ordinal})",
                writes.len()
            ));
            self.stop = true;
            return;
        }
        let scope = self.scope_for(seq);
        let fresh = self.kind.with_options(self.kind.options().with_fresh_sinks());
        let mut cow = CowDevice::new(&self.base);
        apply_subset(&mut cow, &writes, &subset);
        let r = check_staged(&fresh, cow, check, self.cfg, &scope, false);
        let r = finalize_check(self.kind, &self.base, &writes, &subset, check, self.cfg, r);
        out.crash_states += 1;
        for c in &r.cov {
            self.kind.options().cov.absorb(c);
        }
        for t in &r.trace {
            self.kind.options().trace.absorb(t);
        }
        let probe = StateProbe {
            violation: r.violation,
            op_seq: seq,
            op_desc: self.workload.ops[seq].describe(),
            phase,
            n_writes: writes.len(),
        };
        let tgt = self.single.as_mut().expect("single mode");
        tgt.result = Some(probe);
        self.stop = true;
    }
}

/// Replays exactly one crash state of a workload: the crash point with
/// global ordinal `point` (a full run's [`BugReport::point`]), with the
/// in-flight write subset `subset` applied. One oracle run and one recorded
/// run, then a replay that fast-forwards to the target point and checks a
/// single state instead of enumerating all subsets — the primitive behind
/// repro-bundle replay and the shrinker's crash-subset ddmin pass.
///
/// Errors are infrastructure problems (oracle/mkfs failure, ordinal or
/// subset index out of range), not violations.
pub fn check_one_state<K: FsKind>(
    kind: &K,
    workload: &Workload,
    cfg: &TestConfig,
    point: u64,
    subset: &[usize],
) -> Result<StateProbe, String> {
    let guarantees = kind.guarantees();
    kind.options().trace.clear();
    let oracle =
        build_oracle(kind, workload, cfg).map_err(|e| format!("oracle run failed: {e}"))?;

    let log = LogHandle::new();
    let dev = PmDevice::new(cfg.device_size);
    let lp = if cfg.eadr {
        LoggingPm::new_eadr(dev, log.clone())
    } else {
        LoggingPm::new(dev, log.clone())
    };
    let mut fs = kind.mkfs(lp).map_err(|e| format!("mkfs failed: {e}"))?;
    let mut ex = Executor::new();
    let mut rec_results = Vec::with_capacity(workload.ops.len());
    for (seq, op) in workload.ops.iter().enumerate() {
        log.marker(Marker::SyscallBegin(OpRecord { seq, desc: op.describe() }));
        let r = ex.exec(&mut fs, op, seq);
        log.marker(Marker::SyscallEnd { seq, ok: r.result.is_ok() });
        rec_results.push(r);
    }
    drop(fs);
    let log = log.take();

    let mut out = TestOutcome { workload: workload.name.clone(), ..Default::default() };
    let mut engine = ReplayEngine::new(kind, workload, cfg, &oracle, &rec_results, guarantees);
    engine.single =
        Some(SingleTarget { point, subset: subset.to_vec(), result: None, error: None });
    for entry in log.entries() {
        if engine.stop {
            break;
        }
        engine.step(entry, Some(&mut out));
    }
    let tgt = engine.single.take().expect("single mode");
    if let Some(e) = tgt.error {
        return Err(e);
    }
    tgt.result.ok_or_else(|| {
        format!("crash point ordinal {point} out of range ({} points)", out.crash_points)
    })
}

/// Memoized artifacts of one checked crash-state *image*, keyed by content
/// hash in [`CrossMemo`]: a later crash point that reconstructs the same
/// bytes reuses the mount/walk (and probe) results instead of remounting.
/// Only the oracle comparison depends on the crash point, so it always
/// re-runs.
#[derive(Clone)]
struct StateArtifacts {
    /// Mount + tree-walk outcome (check stages 1–2).
    pre: Result<Arc<Tree>, Violation>,
    /// The scope the memoized walk ran under. Reuse at a later point
    /// requires compatibility (see [`memo_walk_compatible`]); before scoped
    /// walks composed with `cross_dedup` this was always `Full`.
    walked: Scope,
    /// Coverage hit during mount + walk.
    cov_mw: Arc<HashSet<u64>>,
    /// Injected-bug trace hit during mount + walk.
    trace_mw: Arc<BTreeSet<BugId>>,
    /// Probe outcome (stage 4), filled lazily the first time a state with
    /// this image passes its oracle comparison.
    probe: Option<ProbeArtifacts>,
}

#[derive(Clone)]
struct ProbeArtifacts {
    violation: Option<Violation>,
    /// Coverage snapshot of the run that filled the probe. Absorption is by
    /// set union, so it may be a superset of the probe-only hits (the fresh
    /// fill includes mount + walk) without affecting the merged totals.
    cov: Arc<HashSet<u64>>,
    trace: Arc<BTreeSet<BugId>>,
}

/// Per-workload cross-point memo (see [`TestConfig::cross_dedup`]). Bounded:
/// new keys are refused once the cap is reached; updates of existing keys
/// (probe fills) always land. All lookups for one crash point happen against
/// the memo as of point entry (in-point repeats are handled by the in-point
/// dedup plan), so decisions are identical for any thread count.
#[derive(Default, Clone)]
pub(crate) struct CrossMemo {
    map: HashMap<ImageKey, StateArtifacts>,
}

const MEMO_CAP: usize = 4096;

impl CrossMemo {
    fn get(&self, key: &ImageKey) -> Option<&StateArtifacts> {
        self.map.get(key)
    }

    fn insert(&mut self, key: ImageKey, art: StateArtifacts) {
        if self.map.len() >= MEMO_CAP && !self.map.contains_key(&key) {
            return;
        }
        self.map.insert(key, art);
    }
}

/// Per-workload class table for representative-state checking
/// ([`TestConfig::rep_check`]): behavioral signature → whether any checked
/// member of the class reported a violation. Bounded like [`CrossMemo`]:
/// once the cap is reached no new classes form (those states simply check
/// normally). The table is frozen while a crash point is in flight — new
/// classes claimed during a point are folded in after its canonical commit
/// walk — so plans are identical for any thread count.
#[derive(Default, Clone)]
pub(crate) struct RepTable {
    map: HashMap<u128, bool>,
}

const REP_CAP: usize = 1 << 16;

impl RepTable {
    fn get(&self, sig: &u128) -> Option<bool> {
        self.map.get(sig).copied()
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn insert(&mut self, sig: u128, violated: bool) {
        if self.map.len() >= REP_CAP && !self.map.contains_key(&sig) {
            return;
        }
        *self.map.entry(sig).or_insert(false) |= violated;
    }
}

/// How the representative layer treats one crash state. `NoRep` states (rep
/// off, in-point duplicates, table at cap) check normally with no class
/// accounting.
#[derive(Clone, Copy, PartialEq)]
enum RepPlan {
    NoRep,
    /// First member of a new class: checked as its representative.
    Claim,
    /// Class has a violation-free representative: commit synthesized clean.
    Skip,
    /// Class is known violated: force-check (graceful degradation).
    Expand,
    /// Class was claimed earlier at this same point by the held index;
    /// resolves to `Skip`/`Expand` once the claimer's verdict is known.
    Defer(usize),
}

/// Plans one non-duplicate state against the frozen class table plus the
/// claims made earlier at this point. Called in canonical state order on
/// both the serial and the parallel path, so claims and cap decisions are
/// identical for any thread count.
fn plan_rep(sig: u128, rep: &RepTable, claims: &mut HashMap<u128, usize>, i: usize) -> RepPlan {
    if let Some(&r) = claims.get(&sig) {
        RepPlan::Defer(r)
    } else if let Some(v) = rep.get(&sig) {
        if v {
            RepPlan::Expand
        } else {
            RepPlan::Skip
        }
    } else if rep.len() + claims.len() >= REP_CAP {
        RepPlan::NoRep
    } else {
        claims.insert(sig, i);
        RepPlan::Claim
    }
}

/// Folds the classes claimed at one crash point into the table, keyed by
/// their representative's committed verdict. Claims were admitted under the
/// combined cap, so insertion order (HashMap iteration) cannot change which
/// of them land.
fn fold_claims(claims: HashMap<u128, usize>, results: &[Option<CheckRes>], rep: &mut RepTable) {
    for (sig, idx) in claims {
        if let Some(r) = &results[idx] {
            rep.insert(sig, r.violation.is_some());
        }
    }
}

// Distinct term namespaces for the crash-point context hash.
const CTX_SEQ: u64 = 0x7b4d_1f2e_9c6a_5d30;
const CTX_CHECK: u64 = 0x1c9a_7e55_3b21_d6f4;
const CTX_TARGET: u64 = 0x642e_0b8a_f17c_3d59;
const CTX_SCOPE: u64 = 0xd3ab_56c1_88ee_0f27;
const CTX_DROP: u64 = 0x21f7_c4e9_0a5d_b863;

fn path_term(tag: u64, p: &str) -> u128 {
    pmem::span_key(0, p.as_bytes()) ^ pmem::run_term(tag, p.len() as u64)
}

/// The check-context half of a behavioral signature: everything besides the
/// replayed overlay that can change a state's verdict. Two states may share
/// a class only when they are checked at the same op (`seq` pins the oracle
/// trees the check references), under the same check kind and relaxation,
/// and with the same comparison scope. Together with
/// [`crashgen::behavior_sig`]'s anchoring at the base image as of op start,
/// equal signatures mean "same check applied to behaviorally equal images".
fn rep_context(seq: usize, phase: CrashPhase, check: &CheckKind<'_>, scope: &Scope) -> u128 {
    let mut h = pmem::run_term(CTX_SEQ ^ (seq as u64), phase as u64);
    let (ck, relax, target) = match check {
        CheckKind::Synchrony { .. } => (1u64, 0u64, None),
        CheckKind::Atomicity { relax, .. } => match relax {
            DataRelax::None => (2, 0, None),
            DataRelax::Torn(t) => (2, 1, Some(*t)),
            DataRelax::Atomic(t) => (2, 2, Some(*t)),
        },
        CheckKind::WeakFsync { target, .. } => (3, 0, *target),
    };
    h ^= pmem::run_term(CTX_CHECK ^ ck, relax);
    if let Some(t) = target {
        h ^= path_term(CTX_TARGET, t);
    }
    match scope {
        Scope::Full => h ^= pmem::run_term(CTX_SCOPE, u64::MAX),
        Scope::Paths(set) => {
            for p in set {
                h ^= path_term(CTX_SCOPE, p);
            }
        }
    }
    h
}

/// Whether skipped states must be force-checked and asserted clean
/// ([`TestConfig::rep_validate`], or `CHIPMUNK_REP_VALIDATE=1` for a whole
/// process).
fn rep_validate_on(cfg: &TestConfig) -> bool {
    static ENV: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    cfg.rep_validate
        || *ENV.get_or_init(|| {
            std::env::var("CHIPMUNK_REP_VALIDATE").is_ok_and(|v| v == "1")
        })
}

/// The committed result of a representative skip: clean, no artifacts, no
/// instrumentation (the state was never mounted).
fn synth_clean() -> CheckRes {
    CheckRes {
        violation: None,
        cov: vec![],
        trace: vec![],
        art: None,
        memo_hit: false,
        sandbox_retry: false,
        fuel_fired: false,
        pruned: 0,
    }
}

/// `rep_validate` debug path: fully check a state the representative layer
/// is about to skip and panic if it reports a violation (the behavioral
/// signature failed to be a checker congruence). Runs on a private overlay
/// with fresh sinks, so the committed outcome is untouched.
#[allow(clippy::too_many_arguments)]
fn validate_skip<K: FsKind>(
    kind: &K,
    base: &[u8],
    writes: &[PendingWrite],
    subset: &[usize],
    check: &CheckKind<'_>,
    cfg: &TestConfig,
    scope: &Scope,
    sig: u128,
) {
    let fresh = kind.with_options(kind.options().with_fresh_sinks());
    let mut cow = CowDevice::new(base);
    apply_subset(&mut cow, writes, subset);
    let r = check_staged(&fresh, cow, check, cfg, scope, false);
    let r = finalize_check(kind, base, writes, subset, check, cfg, r);
    assert!(
        r.violation.is_none(),
        "rep_validate: skipped state {subset:?} (class {sig:#034x}) reports {:?} while its \
         representative was clean",
        r.violation
    );
}

/// The result of checking one crash state on a fresh-sink factory clone:
/// the violation (if any) plus the instrumentation the check produced, so
/// the caller can merge it back in canonical order.
struct CheckRes {
    violation: Option<Violation>,
    cov: Vec<Arc<HashSet<u64>>>,
    trace: Vec<Arc<BTreeSet<BugId>>>,
    /// Memo entry to store at commit: fresh artifacts, or a probe fill for
    /// an existing entry.
    art: Option<StateArtifacts>,
    memo_hit: bool,
    /// This state was re-checked on the slow full-walk fresh-device path
    /// after a sandbox violation under a fast path (see [`finalize_check`]).
    sandbox_retry: bool,
    /// The fuel watchdog fired while checking this state (pre- or
    /// post-retry).
    fuel_fired: bool,
    /// Node comparisons skipped by the shared-oracle hash fast path while
    /// checking this state (see [`TestConfig::shared_oracle`]).
    pruned: u64,
}

/// Whether a staged verdict came from the sandbox (panic/hang) rather than
/// from a consistency check. Sandbox verdicts are never memoized — they may
/// be fast-path artifacts until the slow-path retry confirms them.
fn is_sandbox_violation(v: &Violation) -> bool {
    matches!(v, Violation::RecoveryPanic { .. } | Violation::RecoveryHang { .. })
}

/// How one crash state gets its result. Fixed per crash point before any
/// check runs, so the outcome is independent of execution order.
enum Decision {
    /// Check from scratch (mount, walk, compare, probe).
    Fresh,
    /// Identical image already checked earlier *at this point*: replay
    /// state `j`'s result ([`TestConfig::dedup`]).
    Dup(usize),
    /// Identical image checked at an earlier point: reuse its memoized
    /// artifacts, re-running only the comparison ([`TestConfig::cross_dedup`]).
    Memo(StateArtifacts),
}

fn decide(
    i: usize,
    key: ImageKey,
    seen: &mut HashMap<ImageKey, usize>,
    memo: &CrossMemo,
    cfg: &TestConfig,
    ws: &Scope,
) -> Decision {
    match seen.entry(key) {
        std::collections::hash_map::Entry::Occupied(e) => {
            if cfg.dedup {
                Decision::Dup(*e.get())
            } else {
                // Deliberate re-check: dedup is off, and treating the repeat
                // as a memo hit would make the plan depend on commit timing.
                Decision::Fresh
            }
        }
        std::collections::hash_map::Entry::Vacant(v) => {
            v.insert(i);
            match memo.get(&key) {
                Some(a) if cfg.cross_dedup && memo_walk_compatible(a, ws) => {
                    Decision::Memo(a.clone())
                }
                _ => Decision::Fresh,
            }
        }
    }
}

/// Whether a memoized walk can stand in for this point's walk under `ws`. A
/// *successful* walk under a covering scope read (at least) every byte this
/// point's comparison can touch, so its tree substitutes exactly. A *failed*
/// walk is only equivalent when the scopes match: a wider walk may fail on
/// corrupt file data that a narrower walk never reads.
fn memo_walk_compatible(a: &StateArtifacts, ws: &Scope) -> bool {
    match &a.pre {
        Ok(_) => a.walked.covers(ws),
        Err(_) => &a.walked == ws,
    }
}

/// Check stages 1–4 on a prepared device. `fresh` must carry private
/// coverage/trace sinks; `want_art` keeps the walked tree for memoization.
fn check_staged<K: FsKind, D: pmem::PmBackend>(
    fresh: &K,
    dev: D,
    check: &CheckKind<'_>,
    cfg: &TestConfig,
    scope: &Scope,
    want_art: bool,
) -> CheckRes {
    let ws = walk_scope(cfg, scope);
    let (mut fs, tree) = match sandbox::mount_walk(fresh, dev, &ws, cfg) {
        Ok(x) => x,
        Err(v) => {
            let cov_mw = Arc::new(fresh.options().cov.snapshot());
            let trace_mw = Arc::new(fresh.options().trace.snapshot());
            let memoizable = !is_sandbox_violation(&v);
            return CheckRes {
                violation: Some(v.clone()),
                cov: vec![cov_mw.clone()],
                trace: vec![trace_mw.clone()],
                art: (want_art && memoizable).then_some(StateArtifacts {
                    pre: Err(v),
                    walked: ws,
                    cov_mw,
                    trace_mw,
                    probe: None,
                }),
                memo_hit: false,
                sandbox_retry: false,
                fuel_fired: false,
                pruned: 0,
            };
        }
    };
    let cov_mw = Arc::new(fresh.options().cov.snapshot());
    let trace_mw = Arc::new(fresh.options().trace.snapshot());
    let tree = Arc::new(tree);
    let mut pruned = 0;
    let verdict = sandbox::compare(&tree, check, cfg, scope, &mut pruned);
    let mut probe_art = None;
    let violation = match verdict {
        Some(v) => Some(v),
        None if cfg.probe => {
            let pv = sandbox::probe(&mut fs, &tree, cfg);
            probe_art = Some(ProbeArtifacts {
                violation: pv.clone(),
                cov: Arc::new(fresh.options().cov.snapshot()),
                trace: Arc::new(fresh.options().trace.snapshot()),
            });
            pv
        }
        None => None,
    };
    let (cov, trace) = match &probe_art {
        Some(p) => (vec![p.cov.clone()], vec![p.trace.clone()]),
        None => (vec![cov_mw.clone()], vec![trace_mw.clone()]),
    };
    let memoizable = !violation.as_ref().is_some_and(is_sandbox_violation);
    CheckRes {
        violation,
        cov,
        trace,
        art: (want_art && memoizable)
            .then_some(StateArtifacts { pre: Ok(tree), walked: ws, cov_mw, trace_mw, probe: probe_art }),
        memo_hit: false,
        sandbox_retry: false,
        fuel_fired: false,
        pruned,
    }
}

/// Mounts an image and runs only the usability probe against a memoized
/// tree — the fill path for a memo hit whose comparison passed before any
/// probe outcome was recorded.
fn probe_on<K: FsKind, D: pmem::PmBackend>(
    fresh: &K,
    dev: D,
    tree: &Tree,
    cfg: &TestConfig,
) -> ProbeArtifacts {
    let violation = if cfg.sandbox {
        // One fuel budget covers the re-mount and the probe, mirroring the
        // fresh-check path's mount+walk / probe budgets.
        let _fuel = pmem::FuelGuard::arm(cfg.recovery_fuel);
        match sandbox::guarded(Stage::Mount, || fresh.mount(dev)) {
            Err(v) => Some(v),
            // Identical bytes mounted before; defensive.
            Ok(Err(e)) => Some(Violation::Unmountable(e.to_string())),
            Ok(Ok(mut fs)) => match sandbox::guarded(Stage::Probe, || probe_state(&mut fs, tree)) {
                Ok(v) => v,
                Err(v) => Some(v),
            },
        }
    } else {
        match fresh.mount(dev) {
            Ok(mut fs) => probe_state(&mut fs, tree),
            Err(e) => Some(Violation::Unmountable(e.to_string())),
        }
    };
    ProbeArtifacts {
        violation,
        cov: Arc::new(fresh.options().cov.snapshot()),
        trace: Arc::new(fresh.options().trace.snapshot()),
    }
}

/// Replays a memo hit at this crash point: mount/walk artifacts come from
/// the memo, the oracle comparison re-runs, and `probe_fill` is invoked at
/// most once if the probe outcome is still missing.
fn resolve_memo_hit(
    art: &StateArtifacts,
    check: &CheckKind<'_>,
    cfg: &TestConfig,
    scope: &Scope,
    probe_fill: impl FnOnce(&Tree) -> ProbeArtifacts,
) -> CheckRes {
    let plain = |violation: Option<Violation>, pruned: u64| CheckRes {
        violation,
        cov: vec![art.cov_mw.clone()],
        trace: vec![art.trace_mw.clone()],
        art: None,
        memo_hit: true,
        sandbox_retry: false,
        fuel_fired: false,
        pruned,
    };
    let mut pruned = 0;
    match &art.pre {
        Err(v) => plain(Some(v.clone()), 0),
        Ok(tree) => match sandbox::compare(tree, check, cfg, scope, &mut pruned) {
            Some(v) => plain(Some(v), pruned),
            None if cfg.probe => {
                let (p, fill) = match &art.probe {
                    Some(p) => (p.clone(), None),
                    None => {
                        let p = probe_fill(tree);
                        // A sandboxed probe verdict may be a fast-path
                        // artifact; keep it out of the memo so later points
                        // re-probe (and re-verify) rather than inherit it.
                        let fill = if p.violation.as_ref().is_some_and(is_sandbox_violation) {
                            None
                        } else {
                            let mut updated = art.clone();
                            updated.probe = Some(p.clone());
                            Some(updated)
                        };
                        (p, fill)
                    }
                };
                CheckRes {
                    violation: p.violation.clone(),
                    cov: vec![art.cov_mw.clone(), p.cov],
                    trace: vec![art.trace_mw.clone(), p.trace],
                    art: fill,
                    memo_hit: true,
                    sandbox_retry: false,
                    fuel_fired: false,
                    pruned,
                }
            }
            None => plain(None, pruned),
        },
    }
}

/// Applies the slow-path retry rule to a freshly checked state: when the
/// verdict is a sandbox violation (panic/hang) and any fast path was active,
/// the state is re-checked exactly once on a fresh [`CowDevice`] with a full
/// walk and every fast path disabled, and the slow verdict wins. The sandbox
/// itself stays on for the retry, so a deterministic FS panic still surfaces
/// as a `RecoveryPanic` — now provably not a fast-path artifact.
fn finalize_check<K: FsKind>(
    kind: &K,
    base: &[u8],
    writes: &[PendingWrite],
    subset: &[usize],
    check: &CheckKind<'_>,
    cfg: &TestConfig,
    mut res: CheckRes,
) -> CheckRes {
    res.fuel_fired = matches!(res.violation, Some(Violation::RecoveryHang { .. }));
    if !res.violation.as_ref().is_some_and(is_sandbox_violation) {
        return res;
    }
    // Pure function of the config (never of thread count or timing), so the
    // retry decision is identical on every path that can reach this state.
    let fast_path_active =
        cfg.delta_replay || cfg.scoped_check || cfg.cross_dedup || cfg.prefix_cache;
    if !fast_path_active {
        return res;
    }
    let slow_cfg = TestConfig {
        delta_replay: false,
        scoped_check: false,
        scoped_validate: false,
        cross_dedup: false,
        prefix_cache: false,
        ..cfg.clone()
    };
    let fresh = kind.with_options(kind.options().with_fresh_sinks());
    let mut cow = CowDevice::new(base);
    apply_subset(&mut cow, writes, subset);
    let mut slow = check_staged(&fresh, cow, check, &slow_cfg, &Scope::Full, false);
    slow.sandbox_retry = true;
    slow.fuel_fired =
        res.fuel_fired || matches!(slow.violation, Some(Violation::RecoveryHang { .. }));
    slow
}

/// Invariant context for committing one crash point's states.
struct PointCtx<'a> {
    workload: &'a str,
    seq: usize,
    op_desc: &'a str,
    phase: CrashPhase,
    /// Global crash-point ordinal (0-based; `out.crash_points - 1` at point
    /// entry). Stamped into reports so a single state can be re-targeted.
    point: u64,
    stop_on_first: bool,
    collect_keys: bool,
}

/// Commits one crash state's result in canonical order: counters, sink
/// absorption, memo insertion, report. Returns `true` when stop-on-first
/// fires.
#[allow(clippy::too_many_arguments)]
fn commit_state<K: FsKind>(
    kind: &K,
    ctx: &PointCtx<'_>,
    res: &CheckRes,
    key: ImageKey,
    dup: bool,
    subset_ids: &[usize],
    subset_desc: impl FnOnce() -> String,
    memo: &mut CrossMemo,
    out: &mut TestOutcome,
) -> bool {
    out.crash_states += 1;
    if ctx.collect_keys {
        out.state_keys.push((key as u64) ^ ((key >> 64) as u64));
    }
    if dup {
        out.dedup_hits += 1;
    } else if res.memo_hit {
        out.memo_hits += 1;
    }
    // Sandbox counters increment at commit time only, so speculative work
    // past a stop-on-first winner never skews them; dup replays recount like
    // any other replayed verdict.
    match &res.violation {
        Some(Violation::RecoveryPanic { .. }) => out.recovery_panics += 1,
        Some(Violation::RecoveryHang { .. }) => out.recovery_hangs += 1,
        _ => {}
    }
    if res.sandbox_retry {
        out.sandbox_retries += 1;
    }
    if res.fuel_fired {
        out.fuel_exhausted += 1;
    }
    out.oracle_subtrees_pruned += res.pruned;
    for c in &res.cov {
        kind.options().cov.absorb(c);
    }
    for t in &res.trace {
        kind.options().trace.absorb(t);
    }
    if !dup {
        if let Some(a) = &res.art {
            memo.insert(key, a.clone());
        }
    }
    if let Some(v) = res.violation.clone() {
        push_report(
            out,
            BugReport {
                workload: ctx.workload.to_string(),
                op_seq: ctx.seq,
                op_desc: ctx.op_desc.to_string(),
                phase: ctx.phase,
                subset: subset_desc(),
                point: Some(ctx.point),
                subset_ids: subset_ids.to_vec(),
                violation: v,
            },
        );
        if ctx.stop_on_first {
            return true;
        }
    }
    false
}

/// Checks all crash states at one crash point: optionally the bare base
/// state, then every enumerated subset of the in-flight writes.
///
/// Every state's image is content-hashed (incrementally, from the base
/// image's running hash plus per-write deltas). The hash drives two reuse
/// layers, both decided *per point, before any check runs*, so the outcome
/// is identical for any thread count:
///
/// * in-point dedup ([`TestConfig::dedup`]): a repeated key replays the
///   first occurrence's committed result;
/// * cross-point memo ([`TestConfig::cross_dedup`]): a key first seen at an
///   earlier crash point reuses that state's mount/walk/probe artifacts,
///   re-running only the (point-specific) oracle comparison.
///
/// On top of the exact layers sits representative-state checking
/// ([`TestConfig::rep_check`]): states are clustered by behavioral
/// signature ([`rep_context`] ⊕ [`crashgen::behavior_sig`]); only the first
/// member of each class is checked, later members commit a synthesized
/// clean verdict while the class stays violation-free, and a violated class
/// expands back to exhaustive checking. Plans are fixed per point against
/// the frozen class table, so this too is thread-count-invariant.
///
/// Serially (`threads <= 1`) the states of a point are visited by a single
/// undo-logged overlay that steps between adjacent subsets by applying and
/// undoing only the writes they differ in ([`TestConfig::delta_replay`]);
/// the file system is mounted directly on that overlay and every checker
/// mutation (mount recovery, probe) is rolled back through the same undo
/// marks. With `cfg.threads > 1` the checks run concurrently over private
/// [`pmem::CowDevice`] overlays, committed in canonical enumeration order —
/// counters, reports, coverage, traces, and the stop-on-first winner are
/// bit-identical to the serial walk.
#[allow(clippy::too_many_arguments)]
fn visit_crash_point<K: FsKind>(
    kind: &K,
    workload: &Workload,
    cfg: &TestConfig,
    base: &[u8],
    base_key: ImageKey,
    pending: &[PendingWrite],
    absorbed: &[PendingWrite],
    seq: usize,
    phase: CrashPhase,
    check: &CheckKind<'_>,
    check_base: bool,
    torn_drop: bool,
    scope: &Scope,
    memo: &mut CrossMemo,
    rep: &mut RepTable,
    out: &mut TestOutcome,
    stop: &mut bool,
) {
    out.crash_points += 1;
    out.inflight_sizes.push(pending.len());
    let writes = if cfg.coalesce_data { coalesce(pending) } else { pending.to_vec() };
    let op_desc = workload.ops[seq].describe();

    let mut subsets: Vec<Vec<usize>> = Vec::new();
    if check_base {
        subsets.push(Vec::new());
    }
    subsets.extend(enumerate_subsets_ordered(
        writes.len(),
        cfg.cap,
        cfg.max_states_per_point,
        cfg.large_first_subsets,
    ));
    if subsets.is_empty() {
        return;
    }

    let ctx = PointCtx {
        workload: &workload.name,
        seq,
        op_desc: &op_desc,
        phase,
        point: out.crash_points - 1,
        stop_on_first: cfg.stop_on_first,
        collect_keys: cfg.collect_state_keys,
    };
    let want_art = cfg.cross_dedup;
    let ws = walk_scope(cfg, scope);
    let threads = cfg.threads.max(1);
    let mut results: Vec<Option<CheckRes>> = Vec::with_capacity(subsets.len());
    results.resize_with(subsets.len(), || None);

    // Representative layer: one behavioral signature per state. Classes are
    // planned in canonical state order against the table frozen at point
    // entry (claims made at this point resolve through the claimer's
    // verdict), identically on the serial and the parallel path.
    let rep_on = cfg.rep_check;
    let sigs: Vec<u128> = if rep_on {
        // The torn-data drop additionally requires that no data write
        // leaves an intermediate value a later data write replaces (zero
        // fill and same-byte rewrites are tolerated; anything else would
        // escape the old/new/zero tolerance). Membership-independent, so
        // decided per point; the drop mode is folded into the context hash
        // so a dropped-data class can never alias an exact-data one.
        let drop_data = torn_drop && !data_shadowing_unsafe(&writes);
        let mut ctx_h = rep_context(seq, phase, check, scope);
        if drop_data {
            ctx_h ^= pmem::run_term(CTX_DROP, 1);
        }
        let cache = SigCache::new(&writes, absorbed, drop_data);
        subsets.iter().map(|s| ctx_h ^ cache.sig(s)).collect()
    } else {
        Vec::new()
    };
    let mut claims: HashMap<u128, usize> = HashMap::new();
    let mut fp = FpSet::default();

    if threads <= 1 {
        // Serial: one interleaved walk. The walker's undo-logged overlay is
        // the crash state; decisions, checks, and commits happen per state
        // in canonical order (decisions still cannot see same-point commits:
        // in-point repeats are resolved by `seen` before the memo is
        // consulted, so the plan matches the parallel one exactly).
        let mut walker = SubsetWalker::new(base, base_key);
        let mut seen: HashMap<ImageKey, usize> = HashMap::with_capacity(subsets.len());
        for i in 0..subsets.len() {
            walker.goto(&writes, &subsets[i]);
            let key = walker.key();
            let decision = decide(i, key, &mut seen, memo, cfg, &ws);
            if let Decision::Dup(j) = &decision {
                let r = results[*j].as_ref().expect("dedup source precedes its reuse");
                if commit_state(kind, &ctx, r, key, true, &subsets[i], || describe_subset(&writes, &subsets[i]), memo, out)
                {
                    *stop = true;
                    return;
                }
                continue;
            }
            let plan = if rep_on { plan_rep(sigs[i], rep, &mut claims, i) } else { RepPlan::NoRep };
            // In the serial walk a class's claimer has always committed
            // before its later members, so deferrals resolve immediately.
            let plan = match plan {
                RepPlan::Defer(r) => {
                    let claimer =
                        results[r].as_ref().expect("claimer precedes its class members");
                    if claimer.violation.is_some() { RepPlan::Expand } else { RepPlan::Skip }
                }
                p => p,
            };
            if plan == RepPlan::Skip {
                if rep_validate_on(cfg) {
                    validate_skip(kind, base, &writes, &subsets[i], check, cfg, scope, sigs[i]);
                }
                let res = synth_clean();
                commit_state(kind, &ctx, &res, key, false, &subsets[i], || describe_subset(&writes, &subsets[i]), memo, out);
                out.rep_skipped += 1;
                results[i] = Some(res);
                continue;
            }
            // Footprint layer: a state whose image agrees with a recorded
            // clean footprint on every line that check actually read
            // provably replays the recorder's execution bit for bit — skip
            // it clean. Expansion states are excluded (mirroring the
            // parallel plan, which cannot know claimer verdicts up front).
            let fp_eligible =
                rep_on && subsets.len() >= FP_MIN_STATES && plan != RepPlan::Expand;
            if fp_eligible && fp.matches(base, &writes, &subsets[i]) {
                if rep_validate_on(cfg) {
                    validate_skip(kind, base, &writes, &subsets[i], check, cfg, scope, sigs[i]);
                }
                let res = synth_clean();
                commit_state(kind, &ctx, &res, key, false, &subsets[i], || describe_subset(&writes, &subsets[i]), memo, out);
                out.rep_skipped += 1;
                results[i] = Some(res);
                continue;
            }
            let record = fp_eligible && fp.want_record() && matches!(decision, Decision::Fresh);
            let res = match decision {
                Decision::Dup(_) => unreachable!("handled above"),
                Decision::Memo(art) => {
                    let fresh = kind.with_options(kind.options().with_fresh_sinks());
                    let r = resolve_memo_hit(&art, check, cfg, scope, |tree| {
                        if cfg.delta_replay {
                            let mark = walker.mark();
                            let p = probe_on(&fresh, &mut *walker.device(), tree, cfg);
                            walker.undo_to(mark);
                            p
                        } else {
                            let mut cow = CowDevice::new(base);
                            apply_subset(&mut cow, &writes, &subsets[i]);
                            probe_on(&fresh, cow, tree, cfg)
                        }
                    });
                    finalize_check(kind, base, &writes, &subsets[i], check, cfg, r)
                }
                Decision::Fresh => {
                    let fresh = kind.with_options(kind.options().with_fresh_sinks());
                    let (r, lines) = if cfg.delta_replay {
                        let mark = walker.mark();
                        let (r, lines) = if record {
                            let mut t = pmem::ReadTracker::new(walker.device(), FP_WORD_CAP);
                            let r = check_staged(&fresh, &mut t, check, cfg, scope, want_art);
                            let lines = t.clean_words();
                            (r, lines)
                        } else {
                            let r = check_staged(
                                &fresh,
                                &mut *walker.device(),
                                check,
                                cfg,
                                scope,
                                want_art,
                            );
                            (r, None)
                        };
                        walker.undo_to(mark);
                        (r, lines)
                    } else {
                        let mut cow = CowDevice::new(base);
                        apply_subset(&mut cow, &writes, &subsets[i]);
                        if record {
                            let mut t = pmem::ReadTracker::new(cow, FP_WORD_CAP);
                            let r = check_staged(&fresh, &mut t, check, cfg, scope, want_art);
                            let lines = t.clean_words();
                            (r, lines)
                        } else {
                            (check_staged(&fresh, cow, check, cfg, scope, want_art), None)
                        }
                    };
                    let r = finalize_check(kind, base, &writes, &subsets[i], check, cfg, r);
                    if record {
                        // A failed attempt (overflow, violation, sandbox
                        // retry) closes recording for the point: together
                        // with the entry cap this bounds the recorder
                        // checks the parallel pre-pass mirrors serially.
                        match lines {
                            Some(l) if !r.sandbox_retry && r.violation.is_none() => {
                                fp.record(l, base, &writes, &subsets[i]);
                            }
                            _ => fp.give_up(),
                        }
                    }
                    r
                }
            };
            let s = commit_state(kind, &ctx, &res, key, false, &subsets[i], || describe_subset(&writes, &subsets[i]), memo, out);
            match plan {
                RepPlan::Claim => out.rep_classes += 1,
                RepPlan::Expand => out.rep_expansions += 1,
                _ => {}
            }
            results[i] = Some(res);
            if s {
                *stop = true;
                return;
            }
        }
        fold_claims(claims, &results, rep);
        return;
    }

    // Parallel: one key pass, a fixed plan, then windowed workers over
    // private overlays with an ordered commit walk.
    let mut keys: Vec<ImageKey> = Vec::with_capacity(subsets.len());
    {
        let mut walker = SubsetWalker::new(base, base_key);
        for s in &subsets {
            walker.goto(&writes, s);
            keys.push(walker.key());
        }
    }
    let mut seen: HashMap<ImageKey, usize> = HashMap::with_capacity(subsets.len());
    let plan: Vec<Decision> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| decide(i, k, &mut seen, memo, cfg, &ws))
        .collect();
    let mut rep_plans: Vec<RepPlan> = (0..subsets.len())
        .map(|i| {
            if !rep_on || matches!(plan[i], Decision::Dup(_)) {
                RepPlan::NoRep
            } else {
                plan_rep(sigs[i], rep, &mut claims, i)
            }
        })
        .collect();

    // Footprint layer: entry evolution must match the serial walk, so the
    // plan is drawn in canonical order with recorder states checked eagerly
    // (at most [`crate::footprint::FP_MAX_ENTRIES`] of them, so the serial
    // prefix stays negligible). States matching a recorded clean footprint
    // are skipped; recorder results land in `results` and are committed by
    // the ordered walk below like any other.
    let mut fp_skips = vec![false; subsets.len()];
    if rep_on && subsets.len() >= FP_MIN_STATES {
        for i in 0..subsets.len() {
            if matches!(plan[i], Decision::Dup(_))
                || !matches!(rep_plans[i], RepPlan::Claim | RepPlan::NoRep)
            {
                continue;
            }
            if fp.matches(base, &writes, &subsets[i]) {
                fp_skips[i] = true;
                continue;
            }
            if !fp.want_record() || !matches!(plan[i], Decision::Fresh) {
                continue;
            }
            let fresh = kind.with_options(kind.options().with_fresh_sinks());
            let mut cow = CowDevice::new(base);
            apply_subset(&mut cow, &writes, &subsets[i]);
            let mut t = pmem::ReadTracker::new(cow, FP_WORD_CAP);
            let r = check_staged(&fresh, &mut t, check, cfg, scope, want_art);
            let lines = t.clean_words();
            let r = finalize_check(kind, base, &writes, &subsets[i], check, cfg, r);
            match lines {
                Some(l) if !r.sandbox_retry && r.violation.is_none() => {
                    fp.record(l, base, &writes, &subsets[i]);
                }
                // A failed attempt closes recording (see the serial path),
                // bounding this serial pre-pass at FP_MAX_ENTRIES checks.
                _ => fp.give_up(),
            }
            results[i] = Some(r);
        }
    }

    let check_one = |i: usize| -> CheckRes {
        let fresh = kind.with_options(kind.options().with_fresh_sinks());
        let r = match &plan[i] {
            Decision::Dup(_) => unreachable!("dups are resolved at commit"),
            Decision::Memo(art) => resolve_memo_hit(art, check, cfg, scope, |tree| {
                let mut cow = CowDevice::new(base);
                apply_subset(&mut cow, &writes, &subsets[i]);
                probe_on(&fresh, cow, tree, cfg)
            }),
            Decision::Fresh => {
                let mut cow = CowDevice::new(base);
                apply_subset(&mut cow, &writes, &subsets[i]);
                check_staged(&fresh, cow, check, cfg, scope, want_art)
            }
        };
        finalize_check(kind, base, &writes, &subsets[i], check, cfg, r)
    };

    // With stop-on-first, checking everything up front wastes work past the
    // winner; process bounded speculation windows instead. Window size only
    // trades wasted work against parallelism — it never changes the outcome.
    let run_batch = |todo: &[usize], results: &mut Vec<Option<CheckRes>>| {
        if todo.len() <= 1 {
            for &i in todo {
                results[i] = Some(check_one(i));
            }
            return;
        }
        let per = todo.len().div_ceil(threads);
        let check_one = &check_one;
        std::thread::scope(|sc| {
            let handles: Vec<(&[usize], _)> = todo
                .chunks(per)
                .map(|shard| {
                    let h = sc.spawn(move || {
                        shard.iter().map(|&i| (i, check_one(i))).collect::<Vec<_>>()
                    });
                    (shard, h)
                })
                .collect();
            for (shard, h) in handles {
                match h.join() {
                    Ok(rs) => {
                        for (i, r) in rs {
                            results[i] = Some(r);
                        }
                    }
                    Err(_) => {
                        // A worker died outside the per-stage sandbox
                        // (sandbox off, or a harness bug): fail only the
                        // affected items. Re-check the shard one state
                        // at a time so the survivors keep their real
                        // verdicts and only the panicking state reports
                        // a worker-stage diagnostic.
                        for &i in shard {
                            let r = sandbox::guarded(Stage::Worker, || check_one(i))
                                .unwrap_or_else(|v| CheckRes {
                                    violation: Some(v),
                                    cov: vec![],
                                    trace: vec![],
                                    art: None,
                                    memo_hit: false,
                                    sandbox_retry: false,
                                    fuel_fired: false,
                                    pruned: 0,
                                });
                            results[i] = Some(r);
                        }
                    }
                }
            }
        });
    };

    let window = if cfg.stop_on_first { (threads * 4).max(4) } else { subsets.len() };
    let mut pos = 0usize;
    while pos < subsets.len() {
        let hi = (pos + window).min(subsets.len());
        // Phase 1: everything that must be checked regardless of class
        // outcomes — representatives, known expansions, unclassified states.
        // Footprint recorders already checked in the pre-pass are excluded,
        // as are footprint skips.
        let todo: Vec<usize> = (pos..hi)
            .filter(|&i| {
                results[i].is_none()
                    && !fp_skips[i]
                    && !matches!(plan[i], Decision::Dup(_))
                    && !matches!(rep_plans[i], RepPlan::Skip | RepPlan::Defer(_))
            })
            .collect();
        run_batch(&todo, &mut results);

        // Materialize the footprint skips before deferral resolution: a
        // deferred member's claimer may itself be a footprint skip, whose
        // (clean) verdict must be readable below.
        for i in pos..hi {
            if fp_skips[i] && results[i].is_none() {
                if rep_validate_on(cfg) {
                    validate_skip(kind, base, &writes, &subsets[i], check, cfg, scope, sigs[i]);
                }
                results[i] = Some(synth_clean());
            }
        }

        // Phase 2: deferred class members. Their claimer's verdict is now
        // known (claimers precede members canonically, so they ran in this
        // window's phase 1 or an earlier window); members of violated
        // classes expand and get checked, the rest skip.
        let mut todo2: Vec<usize> = Vec::new();
        for (i, plan) in rep_plans.iter_mut().enumerate().take(hi).skip(pos) {
            if let RepPlan::Defer(r) = *plan {
                let claimer =
                    results[r].as_ref().expect("claimer checked no later than its members");
                *plan = if claimer.violation.is_some() {
                    todo2.push(i);
                    RepPlan::Expand
                } else {
                    RepPlan::Skip
                };
            }
        }
        run_batch(&todo2, &mut results);

        // Materialize the skips so duplicate replays and the commit walk
        // read every state uniformly.
        for i in pos..hi {
            if rep_plans[i] == RepPlan::Skip && results[i].is_none() {
                if rep_validate_on(cfg) {
                    validate_skip(kind, base, &writes, &subsets[i], check, cfg, scope, sigs[i]);
                }
                results[i] = Some(synth_clean());
            }
        }

        // Ordered commit walk over this window.
        for i in pos..hi {
            let (res, dup) = match plan[i] {
                Decision::Dup(j) => {
                    (results[j].as_ref().expect("dedup source precedes its reuse"), true)
                }
                _ => (results[i].as_ref().expect("checked in this window"), false),
            };
            let s = commit_state(kind, &ctx, res, keys[i], dup, &subsets[i], || describe_subset(&writes, &subsets[i]), memo, out);
            if !dup {
                if fp_skips[i] {
                    // A footprint skip trumps the class plan: a skipped
                    // claimer still folds its class (clean) at point exit,
                    // but it never checked, so it is not a counted class.
                    out.rep_skipped += 1;
                } else {
                    match rep_plans[i] {
                        RepPlan::Claim => out.rep_classes += 1,
                        RepPlan::Skip => out.rep_skipped += 1,
                        RepPlan::Expand => out.rep_expansions += 1,
                        RepPlan::NoRep => {}
                        RepPlan::Defer(_) => unreachable!("deferrals resolve before commit"),
                    }
                }
            }
            if s {
                *stop = true;
                return;
            }
        }
        pos = hi;
    }
    fold_claims(claims, &results, rep);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ext4dax::Ext4DaxKind;
    use vfs::Op;

    fn w(name: &str, ops: Vec<Op>) -> Workload {
        Workload::new(name, ops)
    }

    #[test]
    fn ext4dax_clean_workload_passes() {
        let kind = Ext4DaxKind::default();
        let wl = w(
            "basic",
            vec![
                Op::Mkdir { path: "/d".into() },
                Op::Creat { path: "/d/f".into() },
                Op::WritePath { path: "/d/f".into(), off: 0, size: 1000 },
                Op::FsyncPath { path: "/d/f".into() },
                Op::Rename { old: "/d/f".into(), new: "/g".into() },
                Op::Sync,
            ],
        );
        let out = test_workload(&kind, &wl, &TestConfig::default());
        assert!(out.reports.is_empty(), "{:#?}", out.reports);
        // Weak guarantees: crash points only at the fsync and the sync.
        assert_eq!(out.crash_points, 2);
        assert!(out.crash_states >= 2);
    }

    #[test]
    fn weak_mode_ignores_unsynced_loss() {
        // Without any fsync, no crash points exist and nothing is checked —
        // matching the paper's handling of ext4-DAX.
        let kind = Ext4DaxKind::default();
        let wl = w("nosync", vec![Op::Creat { path: "/x".into() }]);
        let out = test_workload(&kind, &wl, &TestConfig::default());
        assert_eq!(out.crash_points, 0);
        assert!(out.reports.is_empty());
    }

    #[test]
    fn failing_ops_are_consistent_with_oracle() {
        let kind = Ext4DaxKind::default();
        let wl = w(
            "enoent",
            vec![
                Op::Unlink { path: "/missing".into() },
                Op::Creat { path: "/f".into() },
                Op::FsyncPath { path: "/f".into() },
            ],
        );
        let out = test_workload(&kind, &wl, &TestConfig::default());
        assert!(out.reports.is_empty(), "{:#?}", out.reports);
    }

    #[test]
    fn outcome_counters_populate() {
        let kind = Ext4DaxKind::default();
        let wl = w(
            "counts",
            vec![
                Op::Creat { path: "/f".into() },
                Op::WritePath { path: "/f".into(), off: 0, size: 8192 },
                Op::Sync,
            ],
        );
        let out = test_workload(&kind, &wl, &TestConfig::default());
        assert!(out.reports.is_empty(), "{:#?}", out.reports);
        assert_eq!(out.inflight_sizes.len() as u64, out.crash_points);
    }
}
