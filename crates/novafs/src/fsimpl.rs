//! The NOVA file-system implementation: system calls over per-inode logs.
//!
//! Persistence discipline (matching the paper's description of NOVA):
//! every operation appends entries to the affected inode logs, makes them
//! durable, and then publishes them with 8-byte in-place tail updates —
//! journaled when more than one word must change atomically. A generation
//! counter pair brackets each mutating call (bug 1's recovery assertion
//! reads it). All volatile state is kept strictly derivable from the logs.

use pmem::PmBackend;
use vfs::{
    covpoint,
    fs::{FileSystem, FsOptions},
    path::{components, is_path_prefix, split_parent},
    BugId, BugSet, BugTrace, Cov, DirEntry, FallocMode, Fd, FileType, FsError, FsResult,
    Metadata, OpenFlags,
};

use crate::{
    journal,
    layout::{
        data_csum, dealloc, inode_csum, ioff, itype, sboff, Geometry, LogRecord, BLOCK,
        ENTRY_SIZE, MAGIC, NAME_MAX, PAGE_HDR, ROOT_INO,
    },
    rebuild::{self, RebuildCtx, POISONED},
    state::{InodeState, Volatile},
};

/// Maximum file size in blocks (bounded by the DRAM map only; generous).
const MAX_FILE_BLOCKS: u64 = 1 << 20;

/// The NOVA / NOVA-Fortis file system.
#[derive(Clone)]
pub struct Nova<D> {
    dev: D,
    geo: Geometry,
    vol: Volatile,
    bugs: BugSet,
    fortis: bool,
    cov: Cov,
    trace: BugTrace,
    extra_bugs: bool,
}

impl<D: PmBackend> Nova<D> {
    /// Formats `dev` and mounts the fresh file system.
    pub fn mkfs(mut dev: D, opts: &FsOptions, fortis: bool) -> FsResult<Self> {
        let geo = Geometry::for_device(dev.len())?;
        let mut sb = vec![0u8; 128];
        let mut put = |o: u64, v: u64| sb[o as usize..o as usize + 8]
            .copy_from_slice(&v.to_le_bytes());
        put(sboff::MAGIC, MAGIC);
        put(sboff::TOTAL_BLOCKS, geo.total_blocks);
        put(sboff::INODE_COUNT, geo.inode_count);
        put(sboff::JOURNAL, geo.journal);
        put(sboff::ITABLE, geo.itable);
        put(sboff::ITABLE2, geo.itable2);
        put(sboff::DATA_START, geo.data_start);
        put(sboff::FORTIS, u64::from(fortis));
        dev.memcpy_nt(0, &sb);
        // Zero the journal block and both inode tables.
        dev.memset_nt(geo.journal * BLOCK, 0, BLOCK);
        let itable_bytes = geo.itable_end() - geo.itable * BLOCK;
        dev.memset_nt(geo.itable * BLOCK, 0, itable_bytes);
        dev.fence();
        let mut fs = Nova {
            dev,
            geo,
            vol: Volatile { next_fd: 3, ..Default::default() },
            bugs: opts.bugs,
            fortis,
            cov: opts.cov.clone(),
            trace: opts.trace.clone(),
            extra_bugs: opts.extra_bugs,
        };
        // Root directory: inode + empty log.
        let page = fs.raw_alloc_for_mkfs()?;
        fs.init_inode(ROOT_INO, itype::DIR, page, true);
        fs.dev.fence();
        if fortis {
            fs.sync_replica(ROOT_INO);
            fs.dev.fence();
        }
        fs.vol.inodes.insert(
            ROOT_INO,
            InodeState {
                ftype: itype::DIR,
                nlink: 2,
                log_head: page,
                log_tail: page * BLOCK + PAGE_HDR,
                ..Default::default()
            },
        );
        Ok(fs)
    }

    /// Mounts `dev`, running journal recovery and the rebuild scan.
    pub fn mount(mut dev: D, opts: &FsOptions, fortis: bool) -> FsResult<Self> {
        if dev.read_u64(sboff::MAGIC) != MAGIC {
            return Err(FsError::Unmountable("bad superblock magic".into()));
        }
        let geo = Geometry {
            total_blocks: dev.read_u64(sboff::TOTAL_BLOCKS),
            inode_count: dev.read_u64(sboff::INODE_COUNT),
            journal: dev.read_u64(sboff::JOURNAL),
            itable: dev.read_u64(sboff::ITABLE),
            itable2: dev.read_u64(sboff::ITABLE2),
            data_start: dev.read_u64(sboff::DATA_START),
        };
        if geo.total_blocks * BLOCK > dev.len() || geo.data_start >= geo.total_blocks {
            return Err(FsError::Unmountable("superblock geometry out of range".into()));
        }
        if dev.read_u64(sboff::FORTIS) != u64::from(fortis) {
            return Err(FsError::Unmountable(
                "mount mode does not match on-device format (fortis flag)".into(),
            ));
        }
        let cov = opts.cov.clone();
        let trace = opts.trace.clone();
        let had_active = journal::recover(&mut dev, &geo, opts.bugs, &cov, &trace)?;
        covpoint!(cov, u64::from(had_active));
        let ctx = RebuildCtx {
            geo: &geo,
            bugs: opts.bugs,
            fortis,
            cov: &cov,
            trace: &trace,
            had_active_txn: had_active,
        };
        let vol = rebuild::rebuild(&mut dev, &ctx)?;
        Ok(Nova { dev, geo, vol, bugs: opts.bugs, fortis, cov, trace, extra_bugs: opts.extra_bugs })
    }

    /// Returns the underlying device (consuming the mount).
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Current simulated-time cost (for the fix-cost benchmarks).
    pub fn sim_cost(&self) -> pmem::SimCost {
        self.dev.sim_cost()
    }

    // ---- generation counter (bug 1's observable) ----

    fn gen_begin(&mut self) {
        self.vol.gen += 1;
        self.dev.store_u64(sboff::GEN_A, self.vol.gen);
        self.dev.flush(sboff::GEN_A, 8);
        // No fence: rides the operation's first fence.
    }

    fn gen_end(&mut self) {
        self.dev.store_u64(sboff::GEN_B, self.vol.gen);
        self.dev.flush(sboff::GEN_B, 8);
        self.dev.fence();
    }

    // ---- inode helpers ----

    fn init_inode(&mut self, ino: u64, ftype: u64, log_page: u64, flush: bool) {
        let base = self.geo.inode_off(ino);
        // Fresh log page: zero next-pointer.
        self.dev.store_u64(log_page * BLOCK, 0);
        self.dev.flush(log_page * BLOCK, 8);
        // eADR-hardened ordering: every field (and the Fortis checksum)
        // lands before the type tag, whose store is the commit point that
        // makes the slot visible to recovery. Under ADR the fields share a
        // cache line and become durable together, so the store order is
        // unobservable there; under eADR each store is individually durable
        // and a tag-first order exposes a typed inode with torn log
        // pointers.
        self.dev.store_u64(base + ioff::NLINK, if ftype == itype::DIR { 2 } else { 1 });
        self.dev.store_u64(base + ioff::LOG_HEAD, log_page);
        self.dev.store_u64(base + ioff::LOG_TAIL, log_page * BLOCK + PAGE_HDR);
        if self.fortis {
            // Checksum over the *final* field values (the tag store below
            // must not invalidate it).
            let mut bytes = self.dev.read_vec(base, 32);
            bytes[ioff::FTYPE as usize..ioff::FTYPE as usize + 8]
                .copy_from_slice(&ftype.to_le_bytes());
            self.dev.store_u64(base + ioff::CSUM, inode_csum(&bytes));
        }
        self.dev.store_u64(base + ioff::FTYPE, ftype);
        if flush {
            self.dev.flush(base, 40);
            if self.fortis {
                self.dev.flush(base + ioff::CSUM, 8);
            }
        }
    }

    /// Stores one inode field in place and refreshes the Fortis checksum.
    /// `csum_flush = false` is the bug-9 path: the checksum store stays in
    /// the cache with no write-back.
    fn iset(&mut self, ino: u64, field: u64, val: u64, csum_flush: bool) {
        let base = self.geo.inode_off(ino);
        self.dev.store_u64(base + field, val);
        self.dev.flush(base + field, 8);
        if self.fortis {
            let bytes = self.dev.read_vec(base, 32);
            self.dev.store_u64(base + ioff::CSUM, inode_csum(&bytes));
            if csum_flush {
                self.dev.flush(base + ioff::CSUM, 8);
            } else {
                self.trace.hit(BugId::B09);
            }
        }
    }

    fn iget(&self, ino: u64, field: u64) -> u64 {
        self.dev.read_u64(self.geo.inode_off(ino) + field)
    }

    /// Copies the primary inode (fields + checksum) to the replica.
    /// Caller fences.
    fn sync_replica(&mut self, ino: u64) {
        if !self.fortis {
            return;
        }
        let p = self.geo.inode_off(ino);
        let r = self.geo.replica_off(ino);
        let bytes = self.dev.read_vec(p, 32);
        self.dev.store(r, &bytes);
        self.dev.store_u64(r + ioff::CSUM, self.dev.read_u64(p + ioff::CSUM));
        self.dev.flush(r, 8 + ioff::CSUM);
    }

    /// Bug-9 variant: replica fields stored and flushed, replica checksum
    /// stored but not flushed.
    fn sync_replica_stale_csum(&mut self, ino: u64) {
        if !self.fortis {
            return;
        }
        let p = self.geo.inode_off(ino);
        let r = self.geo.replica_off(ino);
        let bytes = self.dev.read_vec(p, 32);
        self.dev.store(r, &bytes);
        self.dev.flush(r, 32);
        self.dev.store_u64(r + ioff::CSUM, self.dev.read_u64(p + ioff::CSUM));
        // Missing: flush of the replica checksum line.
        self.trace.hit(BugId::B09);
    }

    /// The words a journal transaction over this inode's tail (and
    /// optionally link count) must cover, including the Fortis checksum.
    fn journal_words(&self, ino: u64, fields: &[u64]) -> Vec<u64> {
        let base = self.geo.inode_off(ino);
        let mut w: Vec<u64> = fields.iter().map(|f| base + f).collect();
        if self.fortis {
            w.push(base + ioff::CSUM);
        }
        w
    }

    // ---- allocation ----

    fn raw_alloc_for_mkfs(&mut self) -> FsResult<u64> {
        // During mkfs the allocator is empty; data blocks start fresh.
        if self.vol.alloc.free_count() == 0 {
            let used = std::collections::BTreeSet::new();
            self.vol.alloc =
                crate::state::Allocator::new(self.geo.data_start, self.geo.total_blocks, &used);
        }
        self.vol.alloc.alloc()
    }

    fn alloc_ino(&mut self) -> FsResult<u64> {
        for ino in 1..=self.geo.inode_count {
            if !self.vol.inodes.contains_key(&ino) {
                return Ok(ino);
            }
        }
        Err(FsError::NoSpace)
    }

    // ---- path resolution (volatile directory tables) ----

    fn resolve(&self, path: &str) -> FsResult<u64> {
        let mut cur = ROOT_INO;
        for c in components(path)? {
            let st = self.vol.inode(cur)?;
            if st.ftype == POISONED {
                return Err(FsError::Corrupt(format!("inode {cur} failed validation")));
            }
            if st.ftype != itype::DIR {
                return Err(FsError::NotDir);
            }
            cur = *st.children.get(c).ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(u64, &'p str)> {
        let (parents, name) = split_parent(path)?;
        if name.len() > NAME_MAX {
            return Err(FsError::NameTooLong);
        }
        let mut cur = ROOT_INO;
        for c in parents {
            let st = self.vol.inode(cur)?;
            if st.ftype == POISONED {
                return Err(FsError::Corrupt(format!("inode {cur} failed validation")));
            }
            if st.ftype != itype::DIR {
                return Err(FsError::NotDir);
            }
            cur = *st.children.get(c).ok_or(FsError::NotFound)?;
        }
        let st = self.vol.inode(cur)?;
        if st.ftype == POISONED {
            return Err(FsError::Corrupt(format!("inode {cur} failed validation")));
        }
        if st.ftype != itype::DIR {
            return Err(FsError::NotDir);
        }
        Ok((cur, name))
    }

    fn check_live(&self, ino: u64) -> FsResult<&InodeState> {
        let st = self.vol.inode(ino)?;
        if st.ftype == POISONED {
            return Err(FsError::Corrupt(format!(
                "inode {ino} references uninitialized or corrupt metadata"
            )));
        }
        Ok(st)
    }

    // ---- log machinery ----

    /// Appends `recs` to `ino`'s log: writes and flushes the entries
    /// (allocating and linking pages as needed) without advancing the tail.
    /// Returns (entry positions, new tail). The caller fences, then
    /// publishes the new tail.
    fn log_append(&mut self, ino: u64, recs: &[LogRecord]) -> FsResult<(Vec<u64>, u64)> {
        let mut pos = self.vol.inode(ino)?.log_tail;
        let mut positions = Vec::with_capacity(recs.len());
        for rec in recs {
            let page = pos / BLOCK;
            if pos + ENTRY_SIZE > (page + 1) * BLOCK {
                covpoint!(self.cov);
                let new_page = self.vol.alloc.alloc()?;
                self.dev.store_u64(new_page * BLOCK, 0);
                self.dev.flush(new_page * BLOCK, 8);
                self.dev.store_u64(page * BLOCK, new_page);
                self.dev.flush(page * BLOCK, 8);
                pos = new_page * BLOCK + PAGE_HDR;
            }
            let bytes = rec.encode();
            self.dev.store(pos, &bytes);
            self.dev.flush(pos, ENTRY_SIZE);
            positions.push(pos);
            pos += ENTRY_SIZE;
        }
        Ok((positions, pos))
    }

    /// Publishes a new tail with an in-place store (+ checksum refresh).
    fn publish_tail(&mut self, ino: u64, new_tail: u64, csum_flush: bool) {
        self.iset(ino, ioff::LOG_TAIL, new_tail, csum_flush);
        if let Ok(st) = self.vol.inode_mut(ino) {
            st.log_tail = new_tail;
        }
    }

    fn cur_gen(&self) -> u64 {
        self.vol.gen
    }

    // ---- file data ----

    fn read_block_or_zeros(&self, st: &InodeState, idx: u64) -> Vec<u8> {
        match st.blocks.get(&idx) {
            Some(&b) => self.dev.read_vec(b * BLOCK, BLOCK),
            None => vec![0u8; BLOCK as usize],
        }
    }

    /// Copy-on-write write of `data` at byte offset `off`: allocates fresh
    /// blocks, writes them non-temporally, fences, then appends one
    /// file-write record per block and publishes the tail under a journal
    /// transaction.
    fn write_inode(&mut self, ino: u64, off: u64, data: &[u8]) -> FsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let end = off + data.len() as u64;
        // §4.4 extra (non-crash-consistency): NOVA "does not properly handle
        // write calls where the number of bytes to write is extremely large;
        // it will allocate all remaining space for the file, causing most
        // subsequent operations to fail". The analogue drains the allocator
        // before failing; the internal invariant check reports it like
        // KASAN would.
        if self.extra_bugs {
            let needed = end.div_ceil(BLOCK) - off / BLOCK;
            if needed > self.vol.alloc.free_count() as u64 {
                while self.vol.alloc.alloc().is_ok() {}
                return Err(FsError::Detected(format!(
                    "write of {} bytes exhausted the allocator ({} blocks requested)",
                    data.len(),
                    needed
                )));
            }
        }
        if end.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let st = self.check_live(ino)?;
        if st.ftype != itype::FILE {
            return Err(FsError::IsDir);
        }
        let first_idx = off / BLOCK;
        let last_idx = (end - 1) / BLOCK;
        let n = last_idx - first_idx + 1;
        let old_size = st.size;

        self.gen_begin();
        // 1. Compose and write the new data blocks (copy-on-write).
        let new_blocks = self.vol.alloc.alloc_run(n)?;
        let mut recs = Vec::with_capacity(n as usize);
        let mut freed = Vec::new();
        for (i, &blk) in new_blocks.iter().enumerate() {
            let idx = first_idx + i as u64;
            let st = self.vol.inode(ino)?;
            let mut content = self.read_block_or_zeros(st, idx);
            let blk_start = idx * BLOCK;
            let s = off.max(blk_start);
            let e = end.min(blk_start + BLOCK);
            content[(s - blk_start) as usize..(e - blk_start) as usize]
                .copy_from_slice(&data[(s - off) as usize..(e - off) as usize]);
            self.dev.memcpy_nt(blk * BLOCK, &content);
            recs.push(LogRecord::FileWrite {
                gen: self.cur_gen(),
                off: idx * BLOCK,
                nblocks: 1,
                block: blk,
                size_after: old_size.max(end.min((idx + 1) * BLOCK)),
                csum: if self.fortis { data_csum(&content) } else { 0 },
            });
            if let Some(&old) = self.vol.inode(ino)?.blocks.get(&idx) {
                freed.push(old);
            }
        }
        self.dev.fence();

        // 2. Append the records and publish the tail. A single record is
        // made visible atomically by the 8-byte tail store; a multi-record
        // append runs under the lite journal so a partially published batch
        // rolls back (the bug-3 recovery path services these transactions).
        if recs.len() > 1 {
            let words = self.journal_words(ino, &[ioff::LOG_TAIL]);
            let txn = journal::txn_begin(&mut self.dev, &self.geo, &words)?;
            let (_, new_tail) = self.log_append(ino, &recs)?;
            self.dev.fence();
            self.publish_tail(ino, new_tail, true);
            self.dev.fence();
            journal::txn_commit(&mut self.dev, &self.geo, txn);
        } else {
            let (_, new_tail) = self.log_append(ino, &recs)?;
            self.dev.fence();
            self.publish_tail(ino, new_tail, true);
            self.dev.fence();
        }

        // 3. Volatile state.
        {
            let st = self.vol.inode_mut(ino)?;
            for (i, &blk) in new_blocks.iter().enumerate() {
                let idx = first_idx + i as u64;
                st.blocks.insert(idx, blk);
                st.fresh_runs.insert(idx);
                if self.fortis {
                    st.run_csums.remove(&idx);
                }
            }
            st.size = st.size.max(end);
        }
        for b in freed {
            self.vol.alloc.free(b)?;
        }
        self.sync_replica(ino);
        self.gen_end();
        Ok(data.len())
    }

    /// Fortis read-path validation of one block.
    fn validate_block(&self, ino: u64, idx: u64, st: &InodeState) -> FsResult<()> {
        if !self.fortis || st.fresh_runs.contains(&idx) {
            return Ok(());
        }
        if let (Some(&blk), Some(&(_, csum))) = (st.blocks.get(&idx), st.run_csums.get(&idx)) {
            let content = self.dev.read_vec(blk * BLOCK, BLOCK);
            if data_csum(&content) != csum {
                return Err(FsError::Corrupt(format!(
                    "inode {ino}: file data checksum mismatch at block index {idx}"
                )));
            }
        }
        Ok(())
    }

    fn read_inode(&self, ino: u64, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let st = self.check_live(ino)?;
        if st.ftype != itype::FILE {
            return Err(FsError::IsDir);
        }
        if off >= st.size {
            return Ok(0);
        }
        let n = buf.len().min((st.size - off) as usize);
        let mut pos = 0usize;
        while pos < n {
            let cur = off + pos as u64;
            let idx = cur / BLOCK;
            let in_blk = cur % BLOCK;
            let step = ((BLOCK - in_blk) as usize).min(n - pos);
            self.validate_block(ino, idx, st)?;
            match st.blocks.get(&idx) {
                Some(&b) => self.dev.read(b * BLOCK + in_blk, &mut buf[pos..pos + step]),
                None => buf[pos..pos + step].fill(0),
            }
            pos += step;
        }
        Ok(n)
    }

    // ---- deletion ----

    fn release_file(&mut self, ino: u64) -> FsResult<()> {
        // Free blocks and log pages in DRAM, then free the inode slot
        // persistently. A crash before the slot update leaves an orphan
        // that the rebuild scan reclaims.
        covpoint!(self.cov);
        let st = self.vol.inodes.remove(&ino).ok_or(FsError::NotFound)?;
        for &b in st.blocks.values() {
            self.vol.alloc.free(b)?;
        }
        let mut page = st.log_head;
        while page != 0 {
            let next = self.dev.read_u64(page * BLOCK);
            self.vol.alloc.free(page)?;
            page = next;
        }
        self.iset(ino, ioff::FTYPE, itype::FREE, true);
        self.dev.fence();
        self.sync_replica(ino);
        self.dev.fence();
        Ok(())
    }

    fn unlink_common(&mut self, parent: u64, name: &str, ino: u64) -> FsResult<()> {
        // Journal: parent tail + child nlink (+ checksums).
        let mut words = self.journal_words(parent, &[ioff::LOG_TAIL]);
        words.extend(self.journal_words(ino, &[ioff::NLINK]));
        let txn = journal::txn_begin(&mut self.dev, &self.geo, &words)?;
        let rec = LogRecord::Dentry {
            valid: false,
            gen: self.cur_gen(),
            ino,
            name: name.to_string(),
        };
        let (_, new_tail) = self.log_append(parent, &[rec])?;
        self.dev.fence();
        let nlink = self.iget(ino, ioff::NLINK) - 1;
        // Bug 9: the checksum refreshes on this path lack write-backs.
        let stale = self.fortis && self.bugs.has(BugId::B09);
        self.publish_tail(parent, new_tail, !stale);
        self.iset(ino, ioff::NLINK, nlink, !stale);
        self.dev.fence();
        journal::txn_commit(&mut self.dev, &self.geo, txn);

        {
            let pst = self.vol.inode_mut(parent)?;
            pst.children.remove(name);
            pst.dentry_pos.remove(name);
        }
        self.vol.inode_mut(ino)?.nlink = nlink;
        if stale {
            self.sync_replica_stale_csum(parent);
            self.sync_replica_stale_csum(ino);
        } else {
            self.sync_replica(parent);
            self.sync_replica(ino);
        }
        self.dev.fence();
        if nlink == 0 && self.vol.open_count(ino) == 0 {
            self.release_file(ino)?;
        }
        Ok(())
    }

    /// Fortis bug-10 strict comparison on the delete path.
    fn fortis_delete_check(&self, ino: u64) -> FsResult<()> {
        if !self.fortis || !self.bugs.has(BugId::B10) {
            return Ok(());
        }
        let p = self.dev.read_vec(self.geo.inode_off(ino), 32);
        let r = self.dev.read_vec(self.geo.replica_off(ino), 32);
        if p != r {
            self.trace.hit(BugId::B10);
            return Err(FsError::Corrupt(format!(
                "inode {ino}: primary and replica disagree; refusing to delete"
            )));
        }
        Ok(())
    }

    fn create_object(&mut self, path: &str, ftype: u64) -> FsResult<u64> {
        let (parent, name) = self.resolve_parent(path)?;
        if self.vol.inode(parent)?.children.contains_key(name) {
            return Err(FsError::Exists);
        }
        self.gen_begin();
        let ino = self.alloc_ino()?;
        let page = self.vol.alloc.alloc()?;
        if self.bugs.has(BugId::B02) {
            // BUG 2 (PM): the new inode is initialized with plain cached
            // stores and never written back; only the parent's dentry and
            // tail become durable.
            self.trace.hit(BugId::B02);
            self.init_inode(ino, ftype, page, false);
        } else {
            self.init_inode(ino, ftype, page, true);
        }
        let rec = LogRecord::Dentry {
            valid: true,
            gen: self.cur_gen(),
            ino,
            name: name.to_string(),
        };
        let (positions, new_tail) = self.log_append(parent, &[rec])?;
        self.dev.fence();
        self.publish_tail(parent, new_tail, true);
        self.dev.fence();

        self.vol.inodes.insert(
            ino,
            InodeState {
                ftype,
                nlink: if ftype == itype::DIR { 2 } else { 1 },
                log_head: page,
                log_tail: page * BLOCK + PAGE_HDR,
                ..Default::default()
            },
        );
        {
            let pst = self.vol.inode_mut(parent)?;
            pst.children.insert(name.to_string(), ino);
            pst.dentry_pos.insert(name.to_string(), positions[0]);
            if ftype == itype::DIR {
                pst.nlink += 1;
            }
        }
        self.sync_replica(ino);
        self.sync_replica(parent);
        self.dev.fence();
        self.gen_end();
        Ok(ino)
    }

    fn truncate_ino(&mut self, ino: u64, size: u64) -> FsResult<()> {
        let st = self.check_live(ino)?;
        if st.ftype != itype::FILE {
            return Err(FsError::IsDir);
        }
        if size.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let old = st.size;
        if size == old {
            return Ok(());
        }
        self.gen_begin();
        if size > old {
            covpoint!(self.cov);
            // Extension: a set-attribute record is all that is needed
            // (reads beyond the old size fall into holes or the zeroed
            // block tail).
            let rec = LogRecord::SetAttr { gen: self.cur_gen(), size };
            let (_, new_tail) = self.log_append(ino, &[rec])?;
            self.dev.fence();
            self.publish_tail(ino, new_tail, true);
            self.dev.fence();
            self.vol.inode_mut(ino)?.size = size;
            self.sync_replica(ino);
            self.dev.fence();
            self.gen_end();
            return Ok(());
        }

        // Shrink.
        covpoint!(self.cov);
        let keep = size.div_ceil(BLOCK);
        let freed: Vec<(u64, u64)> = self
            .vol
            .inode(ino)?
            .blocks
            .range(keep..)
            .map(|(&i, &b)| (i, b))
            .collect();
        let stale = self.fortis && self.bugs.has(BugId::B09);

        // Fortis resilience machinery: record the deallocation intent
        // (bug 11 replays this record at mount).
        if self.fortis && !freed.is_empty() {
            let rec = self.geo.journal * BLOCK + dealloc::OFF;
            let count = freed.len().min(dealloc::CAP) as u64;
            self.dev.store_u64(rec + 8, count);
            for (i, (_, blk)) in freed.iter().take(dealloc::CAP).enumerate() {
                self.dev.store_u64(rec + 16 + i as u64 * 8, *blk);
            }
            self.dev.flush(rec, 16 + count * 8);
            self.dev.fence();
            self.dev.persist_u64(rec, ino); // arm the record last
        }

        let zero_tail = |fs: &mut Self| -> FsResult<()> {
            // Zero the kept boundary block's tail so a later extension
            // reads zeros.
            if !size.is_multiple_of(BLOCK) {
                let idx = size / BLOCK;
                if let Some(&blk) = fs.vol.inode(ino)?.blocks.get(&idx) {
                    let in_blk = size % BLOCK;
                    if fs.fortis && !fs.bugs.has(BugId::B12) {
                        // Fixed Fortis: copy-on-write the boundary block and
                        // log it with a fresh checksum.
                        let mut content = fs.dev.read_vec(blk * BLOCK, BLOCK);
                        content[in_blk as usize..].fill(0);
                        let nb = fs.vol.alloc.alloc()?;
                        fs.dev.memcpy_nt(nb * BLOCK, &content);
                        fs.dev.fence();
                        let rec = LogRecord::FileWrite {
                            gen: fs.cur_gen(),
                            off: idx * BLOCK,
                            nblocks: 1,
                            block: nb,
                            size_after: size,
                            csum: data_csum(&content),
                        };
                        let (_, t) = fs.log_append(ino, &[rec])?;
                        fs.dev.fence();
                        fs.publish_tail(ino, t, true);
                        fs.dev.fence();
                        let old_blk = blk;
                        let st = fs.vol.inode_mut(ino)?;
                        st.blocks.insert(idx, nb);
                        st.fresh_runs.insert(idx);
                        st.run_csums.remove(&idx);
                        fs.vol.alloc.free(old_blk)?;
                    } else {
                        // Plain NOVA (or bug 12): zero in place. With
                        // bug 12 the stale block checksum is left behind.
                        if fs.fortis {
                            fs.trace.hit(BugId::B12);
                        }
                        fs.dev.memset_nt(blk * BLOCK + in_blk, 0, BLOCK - in_blk);
                        fs.dev.fence();
                        let st = fs.vol.inode_mut(ino)?;
                        st.fresh_runs.insert(idx);
                    }
                }
            }
            Ok(())
        };

        if self.bugs.has(BugId::B07) {
            // BUG 7 (logic): the boundary block is zeroed *before* the
            // set-attribute record is durable; a crash in between leaves
            // the old size with zeroed data — data loss.
            self.trace.hit(BugId::B07);
            zero_tail(self)?;
        }
        let rec = LogRecord::SetAttr { gen: self.cur_gen(), size };
        let (_, new_tail) = self.log_append(ino, &[rec])?;
        self.dev.fence();
        self.publish_tail(ino, new_tail, !stale);
        self.dev.fence();
        if !self.bugs.has(BugId::B07) {
            zero_tail(self)?;
        }

        // Volatile: drop the freed mappings, return the blocks.
        {
            let st = self.vol.inode_mut(ino)?;
            st.size = size;
            for (i, _) in &freed {
                st.blocks.remove(i);
                st.run_csums.remove(i);
                st.fresh_runs.remove(i);
            }
        }
        for (_, b) in &freed {
            self.vol.alloc.free(*b)?;
        }
        // Disarm the deallocation record.
        if self.fortis && !freed.is_empty() {
            self.dev.persist_u64(self.geo.journal * BLOCK + dealloc::OFF, 0);
        }
        if stale {
            self.sync_replica_stale_csum(ino);
        } else {
            self.sync_replica(ino);
        }
        self.dev.fence();
        self.gen_end();
        Ok(())
    }
}

impl<D: PmBackend> FileSystem for Nova<D> {
    fn open(&mut self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        covpoint!(self.cov);
        let ino = match self.resolve(path) {
            Ok(ino) => {
                if flags.create && flags.excl {
                    return Err(FsError::Exists);
                }
                let st = self.check_live(ino)?;
                if st.ftype == itype::DIR {
                    return Err(FsError::IsDir);
                }
                if flags.trunc {
                    self.truncate_ino(ino, 0)?;
                }
                ino
            }
            Err(FsError::NotFound) if flags.create => {
                covpoint!(self.cov);
                self.create_object(path, itype::FILE)?
            }
            Err(e) => return Err(e),
        };
        let fd = self.vol.next_fd;
        self.vol.next_fd += 1;
        self.vol.fds.insert(fd, (ino, 0, flags.append));
        Ok(Fd(fd))
    }

    fn close(&mut self, fd: Fd) -> FsResult<()> {
        let (ino, _, _) = self.vol.fds.remove(&fd.0).ok_or(FsError::BadFd)?;
        if let Ok(st) = self.vol.inode(ino) {
            if st.ftype == itype::FILE && st.nlink == 0 && self.vol.open_count(ino) == 0 {
                self.gen_begin();
                self.release_file(ino)?;
                self.gen_end();
            }
        }
        Ok(())
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        self.create_object(path, itype::DIR).map(|_| ())
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        let ino = *self.vol.inode(parent)?.children.get(name).ok_or(FsError::NotFound)?;
        let st = self.check_live(ino)?;
        if st.ftype != itype::DIR {
            return Err(FsError::NotDir);
        }
        if !st.children.is_empty() {
            return Err(FsError::NotEmpty);
        }
        self.fortis_delete_check(ino)?;
        self.gen_begin();
        // Tombstone in the parent, then release the directory.
        let words = self.journal_words(parent, &[ioff::LOG_TAIL]);
        let txn = journal::txn_begin(&mut self.dev, &self.geo, &words)?;
        let rec = LogRecord::Dentry {
            valid: false,
            gen: self.cur_gen(),
            ino,
            name: name.to_string(),
        };
        let (_, new_tail) = self.log_append(parent, &[rec])?;
        self.dev.fence();
        let stale = self.fortis && self.bugs.has(BugId::B09);
        self.publish_tail(parent, new_tail, !stale);
        self.dev.fence();
        journal::txn_commit(&mut self.dev, &self.geo, txn);
        {
            let pst = self.vol.inode_mut(parent)?;
            pst.children.remove(name);
            pst.dentry_pos.remove(name);
            pst.nlink -= 1;
        }
        // Free the directory inode and its log.
        let st = self.vol.inodes.remove(&ino).ok_or(FsError::NotFound)?;
        let mut page = st.log_head;
        while page != 0 {
            let next = self.dev.read_u64(page * BLOCK);
            self.vol.alloc.free(page)?;
            page = next;
        }
        self.iset(ino, ioff::FTYPE, itype::FREE, !stale);
        self.dev.fence();
        if stale {
            self.sync_replica_stale_csum(parent);
        } else {
            self.sync_replica(parent);
            self.sync_replica(ino);
        }
        self.dev.fence();
        self.gen_end();
        Ok(())
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let (parent, name) = self.resolve_parent(path)?;
        let ino = *self.vol.inode(parent)?.children.get(name).ok_or(FsError::NotFound)?;
        let st = self.check_live(ino)?;
        if st.ftype != itype::FILE {
            return Err(FsError::IsDir);
        }
        self.fortis_delete_check(ino)?;
        self.gen_begin();
        self.unlink_common(parent, name, ino)?;
        self.gen_end();
        Ok(())
    }

    fn link(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(old)?;
        let st = self.check_live(ino)?;
        if st.ftype != itype::FILE {
            return Err(FsError::IsDir);
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.vol.inode(parent)?.children.contains_key(name) {
            return Err(FsError::Exists);
        }
        self.gen_begin();
        let nlink = self.iget(ino, ioff::NLINK) + 1;
        if self.bugs.has(BugId::B06) {
            // BUG 6 (logic): the link count is bumped with an in-place
            // update — after a safety check that reads the inode back from
            // media — *before* the dentry transaction commits.
            self.trace.hit(BugId::B06);
            self.dev.note_media_read(32);
            self.iset(ino, ioff::NLINK, nlink, true);
            self.dev.fence();
            let words = self.journal_words(parent, &[ioff::LOG_TAIL]);
            let txn = journal::txn_begin(&mut self.dev, &self.geo, &words)?;
            let rec = LogRecord::Dentry {
                valid: true,
                gen: self.cur_gen(),
                ino,
                name: name.to_string(),
            };
            let (positions, new_tail) = self.log_append(parent, &[rec])?;
            self.dev.fence();
            self.publish_tail(parent, new_tail, true);
            self.dev.fence();
            journal::txn_commit(&mut self.dev, &self.geo, txn);
            let pst = self.vol.inode_mut(parent)?;
            pst.children.insert(name.to_string(), ino);
            pst.dentry_pos.insert(name.to_string(), positions[0]);
        } else {
            // Fixed: one transaction covers the dentry tail and the link
            // count.
            let mut words = self.journal_words(parent, &[ioff::LOG_TAIL]);
            words.extend(self.journal_words(ino, &[ioff::NLINK]));
            let txn = journal::txn_begin(&mut self.dev, &self.geo, &words)?;
            let rec = LogRecord::Dentry {
                valid: true,
                gen: self.cur_gen(),
                ino,
                name: name.to_string(),
            };
            let (positions, new_tail) = self.log_append(parent, &[rec])?;
            self.dev.fence();
            self.publish_tail(parent, new_tail, true);
            self.iset(ino, ioff::NLINK, nlink, true);
            self.dev.fence();
            journal::txn_commit(&mut self.dev, &self.geo, txn);
            let pst = self.vol.inode_mut(parent)?;
            pst.children.insert(name.to_string(), ino);
            pst.dentry_pos.insert(name.to_string(), positions[0]);
        }
        self.vol.inode_mut(ino)?.nlink = nlink;
        self.sync_replica(ino);
        self.sync_replica(parent);
        self.dev.fence();
        self.gen_end();
        Ok(())
    }

    fn rename(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        let src_ino = self.resolve(old)?;
        let src_is_dir = self.check_live(src_ino)?.ftype == itype::DIR;
        if src_is_dir && is_path_prefix(old, new) && old != new {
            return Err(FsError::Invalid);
        }
        if old == new {
            return Ok(());
        }
        let (src_parent, src_name) = self.resolve_parent(old)?;
        let (dst_parent, dst_name) = self.resolve_parent(new)?;
        let src_name = src_name.to_string();
        let dst_name = dst_name.to_string();

        // Validate the destination.
        let victim = self.vol.inode(dst_parent)?.children.get(&dst_name).copied();
        if let Some(v) = victim {
            if v == src_ino {
                return Ok(());
            }
            let vst = self.check_live(v)?;
            match (src_is_dir, vst.ftype == itype::DIR) {
                (true, true) => {
                    if !vst.children.is_empty() {
                        return Err(FsError::NotEmpty);
                    }
                }
                (true, false) => return Err(FsError::NotDir),
                (false, true) => return Err(FsError::IsDir),
                (false, false) => self.fortis_delete_check(v)?,
            }
        }

        self.gen_begin();
        let same_parent = src_parent == dst_parent;
        let gen = self.cur_gen();

        if same_parent && self.bugs.has(BugId::B04) {
            // BUG 4 (logic): the in-place fast path. The old dentry is
            // invalidated *in place* — durable immediately — and the new
            // dentry is published with a bare tail store, skipping the lite
            // journal entirely. That is exactly the performance win the
            // paper's Observation 2 describes, and exactly why a crash
            // between the invalidation and the tail publish loses the file.
            self.trace.hit(BugId::B04);
            covpoint!(self.cov);
            let pos = *self
                .vol
                .inode(src_parent)?
                .dentry_pos
                .get(&src_name)
                .ok_or(FsError::NotFound)?;
            self.dev.store(pos + 1, &[0u8]); // clear the valid byte
            self.dev.flush(pos + 1, 1);
            self.dev.fence();
            let rec = LogRecord::Dentry { valid: true, gen, ino: src_ino, name: dst_name.clone() };
            let (positions, new_tail) = self.log_append(src_parent, &[rec])?;
            self.dev.fence();
            self.publish_tail(src_parent, new_tail, true);
            if let Some(v) = victim {
                if !src_is_dir {
                    let n = self.iget(v, ioff::NLINK) - 1;
                    self.iset(v, ioff::NLINK, n, true);
                }
            }
            self.dev.fence();
            self.finish_rename(
                src_parent, &src_name, dst_parent, &dst_name, src_ino, src_is_dir, victim,
                positions[0],
            )?;
            self.gen_end();
            return Ok(());
        }

        if !same_parent && self.bugs.has(BugId::B05) {
            // BUG 5 (logic): the transaction covers only the destination
            // side; the tombstone for the old name is appended after the
            // commit, outside the transaction. A crash in between leaves
            // the file under both names.
            self.trace.hit(BugId::B05);
            covpoint!(self.cov);
            let mut words = self.journal_words(dst_parent, &[ioff::LOG_TAIL]);
            if let Some(v) = victim {
                if !src_is_dir {
                    words.extend(self.journal_words(v, &[ioff::NLINK]));
                }
            }
            let txn = journal::txn_begin(&mut self.dev, &self.geo, &words)?;
            let rec = LogRecord::Dentry { valid: true, gen, ino: src_ino, name: dst_name.clone() };
            let (positions, new_tail) = self.log_append(dst_parent, &[rec])?;
            self.dev.fence();
            self.publish_tail(dst_parent, new_tail, true);
            if let Some(v) = victim {
                if !src_is_dir {
                    let n = self.iget(v, ioff::NLINK) - 1;
                    self.iset(v, ioff::NLINK, n, true);
                }
            }
            self.dev.fence();
            journal::txn_commit(&mut self.dev, &self.geo, txn);
            // Post-commit, unprotected: remove the old name.
            let tomb =
                LogRecord::Dentry { valid: false, gen, ino: src_ino, name: src_name.clone() };
            let (_, old_tail) = self.log_append(src_parent, &[tomb])?;
            self.dev.fence();
            self.publish_tail(src_parent, old_tail, true);
            self.dev.fence();
            self.finish_rename(
                src_parent, &src_name, dst_parent, &dst_name, src_ino, src_is_dir, victim,
                positions[0],
            )?;
            self.gen_end();
            return Ok(());
        }

        // Correct implementation: one transaction covers both directory
        // tails (and the victim's link count).
        let mut words = self.journal_words(src_parent, &[ioff::LOG_TAIL]);
        if !same_parent {
            words.extend(self.journal_words(dst_parent, &[ioff::LOG_TAIL]));
        }
        if let Some(v) = victim {
            if !src_is_dir {
                words.extend(self.journal_words(v, &[ioff::NLINK]));
            }
        }
        let txn = journal::txn_begin(&mut self.dev, &self.geo, &words)?;
        let tomb = LogRecord::Dentry { valid: false, gen, ino: src_ino, name: src_name.clone() };
        let newrec = LogRecord::Dentry { valid: true, gen, ino: src_ino, name: dst_name.clone() };
        let (positions, new_pos) = if same_parent {
            // The fix persists the invalidating entry before the new name
            // is written — the extra ordering fence is part of the fix's
            // cost (Observation 2: "fixing these bugs often requires
            // journalling more data"). The volatile tail is advanced past
            // the tombstone so the second append lands after it; the real
            // publish happens below, once, under the journal.
            let (_, mid) = self.log_append(src_parent, &[tomb])?;
            self.dev.fence();
            self.vol.inode_mut(src_parent)?.log_tail = mid;
            let (p, t) = self.log_append(src_parent, &[newrec])?;
            (vec![p[0]], t)
        } else {
            let (_, src_tail) = self.log_append(src_parent, &[tomb])?;
            let (p, dst_tail) = self.log_append(dst_parent, &[newrec])?;
            self.dev.fence();
            self.publish_tail(src_parent, src_tail, true);
            self.publish_tail(dst_parent, dst_tail, true);
            if let Some(v) = victim {
                if !src_is_dir {
                    let n = self.iget(v, ioff::NLINK) - 1;
                    self.iset(v, ioff::NLINK, n, true);
                }
            }
            self.dev.fence();
            journal::txn_commit(&mut self.dev, &self.geo, txn);
            self.finish_rename(
                src_parent, &src_name, dst_parent, &dst_name, src_ino, src_is_dir, victim, p[0],
            )?;
            self.gen_end();
            return Ok(());
        };
        self.dev.fence();
        self.publish_tail(src_parent, new_pos, true);
        if let Some(v) = victim {
            if !src_is_dir {
                let n = self.iget(v, ioff::NLINK) - 1;
                self.iset(v, ioff::NLINK, n, true);
            }
        }
        self.dev.fence();
        journal::txn_commit(&mut self.dev, &self.geo, txn);
        self.finish_rename(
            src_parent, &src_name, dst_parent, &dst_name, src_ino, src_is_dir, victim,
            positions[0],
        )?;
        self.gen_end();
        Ok(())
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        covpoint!(self.cov);
        let ino = self.resolve(path)?;
        self.truncate_ino(ino, size)
    }

    fn fallocate(&mut self, fd: Fd, mode: FallocMode, off: u64, len: u64) -> FsResult<()> {
        covpoint!(self.cov);
        if len == 0 {
            return Err(FsError::Invalid);
        }
        let (ino, _, _) = *self.vol.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        let st = self.check_live(ino)?;
        if st.ftype != itype::FILE {
            return Err(FsError::IsDir);
        }
        let end = off + len;
        if end.div_ceil(BLOCK) > MAX_FILE_BLOCKS {
            return Err(FsError::NoSpace);
        }
        let size = st.size;
        self.gen_begin();
        let gen = self.cur_gen();
        match mode {
            FallocMode::Allocate | FallocMode::KeepSize => {
                let new_size = if mode == FallocMode::Allocate { size.max(end) } else { size };
                let range = off / BLOCK..end.div_ceil(BLOCK);
                let wanted: Vec<u64> = if self.bugs.has(BugId::B08) {
                    // BUG 8 (logic): the log records cover the whole range,
                    // including already-mapped blocks; replaying them at
                    // mount replaces real data with fresh zero blocks.
                    self.trace.hit(BugId::B08);
                    range.collect()
                } else {
                    let st = self.vol.inode(ino)?;
                    range.filter(|i| !st.blocks.contains_key(i)).collect()
                };
                let mut recs = Vec::new();
                let mut mapped = Vec::new();
                for &idx in &wanted {
                    let b = self.vol.alloc.alloc()?;
                    self.dev.memset_nt(b * BLOCK, 0, BLOCK);
                    recs.push(LogRecord::FileWrite {
                        gen,
                        off: idx * BLOCK,
                        nblocks: 1,
                        block: b,
                        size_after: new_size,
                        csum: if self.fortis { data_csum(&vec![0u8; BLOCK as usize]) } else { 0 },
                    });
                    mapped.push((idx, b));
                }
                if recs.is_empty() && new_size != size {
                    recs.push(LogRecord::SetAttr { gen, size: new_size });
                }
                if !recs.is_empty() {
                    self.dev.fence();
                    let (_, new_tail) = self.log_append(ino, &recs)?;
                    self.dev.fence();
                    self.publish_tail(ino, new_tail, true);
                    self.dev.fence();
                }
                let already = self.vol.inode(ino)?.blocks.clone();
                let st = self.vol.inode_mut(ino)?;
                st.size = new_size;
                for (idx, b) in mapped {
                    if already.contains_key(&idx) {
                        // Buggy path logged a replacement it must not apply
                        // while running (crash-free semantics stay correct;
                        // the divergence only shows after recovery). The
                        // fresh zero block stays allocated — the log
                        // references it.
                    } else {
                        st.blocks.insert(idx, b);
                        st.fresh_runs.insert(idx);
                    }
                }
            }
            FallocMode::ZeroRange | FallocMode::PunchHole => {
                let z_end = end.min(size);
                let mut recs = Vec::new();
                let mut dram: Vec<(u64, Option<u64>)> = Vec::new();
                let mut cur = off;
                while cur < z_end {
                    let idx = cur / BLOCK;
                    let in_blk = cur % BLOCK;
                    let n = (BLOCK - in_blk).min(z_end - cur);
                    let st = self.vol.inode(ino)?;
                    if mode == FallocMode::PunchHole && in_blk == 0 && n == BLOCK {
                        if st.blocks.contains_key(&idx) {
                            recs.push(LogRecord::FileWrite {
                                gen,
                                off: idx * BLOCK,
                                nblocks: 1,
                                block: 0,
                                size_after: size,
                                csum: 0,
                            });
                            dram.push((idx, None));
                        }
                    } else if st.blocks.contains_key(&idx) {
                        // Copy-on-write zeroing of a partial (or zero-range)
                        // block.
                        let mut content = self.read_block_or_zeros(st, idx);
                        content[in_blk as usize..(in_blk + n) as usize].fill(0);
                        let b = self.vol.alloc.alloc()?;
                        self.dev.memcpy_nt(b * BLOCK, &content);
                        recs.push(LogRecord::FileWrite {
                            gen,
                            off: idx * BLOCK,
                            nblocks: 1,
                            block: b,
                            size_after: size,
                            csum: if self.fortis { data_csum(&content) } else { 0 },
                        });
                        dram.push((idx, Some(b)));
                    }
                    cur += n;
                }
                if !recs.is_empty() {
                    self.dev.fence();
                    let (_, new_tail) = self.log_append(ino, &recs)?;
                    self.dev.fence();
                    self.publish_tail(ino, new_tail, true);
                    self.dev.fence();
                    let mut freed = Vec::new();
                    {
                        let st = self.vol.inode_mut(ino)?;
                        for (idx, nb) in dram {
                            let old = match nb {
                                Some(b) => {
                                    let old = st.blocks.insert(idx, b);
                                    st.fresh_runs.insert(idx);
                                    st.run_csums.remove(&idx);
                                    old
                                }
                                None => {
                                    st.fresh_runs.remove(&idx);
                                    st.run_csums.remove(&idx);
                                    st.blocks.remove(&idx)
                                }
                            };
                            if let Some(o) = old {
                                freed.push(o);
                            }
                        }
                    }
                    for b in freed {
                        self.vol.alloc.free(b)?;
                    }
                }
            }
        }
        self.sync_replica(ino);
        self.dev.fence();
        self.gen_end();
        Ok(())
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        let (ino, offset, append) = *self.vol.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        let off = if append { self.vol.inode(ino)?.size } else { offset };
        let n = self.write_inode(ino, off, data)?;
        if let Some(f) = self.vol.fds.get_mut(&fd.0) {
            f.1 = off + n as u64;
        }
        Ok(n)
    }

    fn pwrite(&mut self, fd: Fd, off: u64, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        let (ino, _, _) = *self.vol.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        self.write_inode(ino, off, data)
    }

    fn pread(&self, fd: Fd, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let (ino, _, _) = *self.vol.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        self.read_inode(ino, off, buf)
    }

    fn fsync(&mut self, _fd: Fd) -> FsResult<()> {
        // NOVA is synchronous: every operation is durable on return.
        Ok(())
    }

    fn sync(&mut self) -> FsResult<()> {
        Ok(())
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let ino = self.resolve(path)?;
        let st = self.check_live(ino)?;
        Ok(Metadata {
            ino,
            ftype: if st.ftype == itype::DIR { FileType::Directory } else { FileType::Regular },
            nlink: st.nlink,
            size: if st.ftype == itype::DIR { st.children.len() as u64 } else { st.size },
            blocks: if st.ftype == itype::DIR { 1 } else { st.blocks.len() as u64 },
        })
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.resolve(path)?;
        let st = self.check_live(ino)?;
        if st.ftype != itype::DIR {
            return Err(FsError::NotDir);
        }
        let mut out = Vec::with_capacity(st.children.len());
        for (name, &child) in &st.children {
            let ftype = match self.vol.inode(child) {
                Ok(cst) if cst.ftype == itype::DIR => FileType::Directory,
                Ok(cst) if cst.ftype == POISONED => {
                    return Err(FsError::Corrupt(format!(
                        "directory entry {name} references corrupt inode {child}"
                    )))
                }
                Ok(_) => FileType::Regular,
                Err(_) => {
                    return Err(FsError::Corrupt(format!(
                        "directory entry {name} references missing inode {child}"
                    )))
                }
            };
            out.push(DirEntry { name: name.clone(), ino: child, ftype });
        }
        Ok(out)
    }

    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let ino = self.resolve(path)?;
        let st = self.check_live(ino)?;
        if st.ftype != itype::FILE {
            return Err(FsError::IsDir);
        }
        let mut buf = vec![0u8; st.size as usize];
        self.read_inode(ino, 0, &mut buf)?;
        Ok(buf)
    }
}

impl<D: PmBackend> Nova<D> {
    /// Shared volatile-state update after any rename flavour.
    #[allow(clippy::too_many_arguments)]
    fn finish_rename(
        &mut self,
        src_parent: u64,
        src_name: &str,
        dst_parent: u64,
        dst_name: &str,
        src_ino: u64,
        src_is_dir: bool,
        victim: Option<u64>,
        new_dentry_pos: u64,
    ) -> FsResult<()> {
        if let Some(v) = victim {
            if src_is_dir {
                // Empty directory victim: release it.
                let vst = self.vol.inodes.remove(&v).ok_or(FsError::NotFound)?;
                let mut page = vst.log_head;
                while page != 0 {
                    let next = self.dev.read_u64(page * BLOCK);
                    self.vol.alloc.free(page)?;
                    page = next;
                }
                self.iset(v, ioff::FTYPE, itype::FREE, true);
                self.dev.fence();
            } else {
                let n = self.iget(v, ioff::NLINK);
                self.vol.inode_mut(v)?.nlink = n;
                if n == 0 && self.vol.open_count(v) == 0 {
                    self.release_file(v)?;
                } else {
                    // The victim survives (hard links or open descriptors):
                    // its link count changed, so its replica must follow —
                    // a stale replica would resurrect the old count at
                    // recovery.
                    self.sync_replica(v);
                    self.dev.fence();
                }
            }
        }
        {
            let sp = self.vol.inode_mut(src_parent)?;
            sp.children.remove(src_name);
            sp.dentry_pos.remove(src_name);
            if src_is_dir && src_parent != dst_parent {
                sp.nlink -= 1;
            }
        }
        {
            let dp = self.vol.inode_mut(dst_parent)?;
            let had_victim_dir = victim.is_some() && src_is_dir;
            dp.children.insert(dst_name.to_string(), src_ino);
            dp.dentry_pos.insert(dst_name.to_string(), new_dentry_pos);
            if src_is_dir && src_parent != dst_parent && !had_victim_dir {
                dp.nlink += 1;
            } else if src_is_dir && src_parent == dst_parent && had_victim_dir {
                dp.nlink -= 1;
            }
        }
        self.sync_replica(src_parent);
        if src_parent != dst_parent {
            self.sync_replica(dst_parent);
        }
        self.dev.fence();
        Ok(())
    }
}
