//! The lite journal: an undo journal of 8-byte word records.
//!
//! NOVA uses a small journal to make metadata updates spanning multiple
//! 8-byte words atomic (rename touches two directory logs; link and unlink
//! touch a directory log and a link count). The protocol:
//!
//! 1. record `(address, old value)` for every word the transaction will
//!    modify, flush the records, fence;
//! 2. persist the journal tail (the transaction is now *active*), fence;
//! 3. perform the in-place updates;
//! 4. commit by persisting tail = 0.
//!
//! Recovery finds `tail != 0` ⇒ an active transaction crashed mid-update,
//! and rolls back by restoring the old values (in reverse).
//!
//! Record addresses are stored **relative to the start of the inode-table
//! region** — every word NOVA journals is an inode field. Bug 3 lives in
//! the recovery path: it interprets the relative addresses as absolute
//! device addresses, fails its own range validation, and aborts the mount.

use pmem::PmBackend;
use vfs::{covpoint, BugId, BugSet, Cov, FsError, FsResult};

use crate::layout::{Geometry, BLOCK};

/// Journal block header: tail (number of records; 0 = no active txn).
const JTAIL: u64 = 0;
/// First record offset within the journal block.
const JRECS: u64 = 16;
/// Record size: address (u64) + old value (u64).
const RECSZ: u64 = 16;

/// Maximum records per transaction.
pub const MAX_RECORDS: u64 = (BLOCK - JRECS) / RECSZ;

/// A started (active) journal transaction.
pub struct Txn {
    n: u64,
}

/// Begins a transaction covering the absolute device addresses `words`
/// (each must lie in the inode-table region).
pub fn txn_begin<D: PmBackend>(dev: &mut D, geo: &Geometry, words: &[u64]) -> FsResult<Txn> {
    debug_assert!(words.len() as u64 <= MAX_RECORDS);
    let jbase = geo.journal * BLOCK;
    let itable_base = geo.itable * BLOCK;
    for (i, &addr) in words.iter().enumerate() {
        debug_assert!(
            addr >= itable_base && addr + 8 <= geo.itable_end(),
            "journaled word outside the inode tables: {addr:#x}"
        );
        let old = dev.read_u64(addr);
        let rec = jbase + JRECS + i as u64 * RECSZ;
        dev.store_u64(rec, addr - itable_base);
        dev.store_u64(rec + 8, old);
    }
    dev.flush(jbase + JRECS, words.len() as u64 * RECSZ);
    dev.fence();
    dev.persist_u64(jbase + JTAIL, words.len() as u64);
    Ok(Txn { n: words.len() as u64 })
}

/// Commits the transaction: the in-place updates are already durable; clear
/// the tail so recovery will not roll them back.
pub fn txn_commit<D: PmBackend>(dev: &mut D, geo: &Geometry, txn: Txn) {
    let _ = txn.n;
    dev.persist_u64(geo.journal * BLOCK + JTAIL, 0);
}

/// Journal recovery at mount. Rolls back an active transaction, restoring
/// the old values in reverse record order.
///
/// With bug 3 present, record addresses are misread as absolute device
/// addresses; the range check then rejects them and the mount fails.
pub fn recover<D: PmBackend>(
    dev: &mut D,
    geo: &Geometry,
    bugs: BugSet,
    cov: &Cov,
    trace: &vfs::BugTrace,
) -> FsResult<bool> {
    let jbase = geo.journal * BLOCK;
    let tail = dev.read_u64(jbase + JTAIL);
    if tail == 0 {
        return Ok(false);
    }
    covpoint!(cov);
    if tail > MAX_RECORDS {
        return Err(FsError::Unmountable(format!(
            "journal tail {tail} exceeds capacity {MAX_RECORDS}"
        )));
    }
    let itable_base = geo.itable * BLOCK;
    for i in (0..tail).rev() {
        let rec = jbase + JRECS + i * RECSZ;
        let rel = dev.read_u64(rec);
        let old = dev.read_u64(rec + 8);
        let addr = if bugs.has(BugId::B03) {
            // BUG 3 (logic): the recovery path forgets that record
            // addresses are inode-table-relative and treats them as
            // absolute device addresses.
            trace.hit(BugId::B03);
            rel
        } else {
            itable_base + rel
        };
        if addr < itable_base || addr + 8 > geo.itable_end() {
            covpoint!(cov);
            return Err(FsError::Unmountable(format!(
                "journal record {i} restore address {addr:#x} outside the inode tables"
            )));
        }
        dev.store_u64(addr, old);
        dev.flush(addr, 8);
    }
    dev.fence();
    dev.persist_u64(jbase + JTAIL, 0);
    Ok(true)
}

/// Whether a transaction is currently active (used by the bug-1 recovery
/// assertion).
pub fn txn_active<D: PmBackend>(dev: &D, geo: &Geometry) -> bool {
    dev.read_u64(geo.journal * BLOCK + JTAIL) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PmDevice;
    use vfs::BugTrace;

    fn setup() -> (PmDevice, Geometry) {
        let size = 4 << 20;
        (PmDevice::new(size), Geometry::for_device(size).unwrap())
    }

    #[test]
    fn txn_rollback_restores_old_values() {
        let (mut dev, geo) = setup();
        let a = geo.inode_off(1);
        let b = geo.inode_off(2) + 8;
        dev.persist_u64(a, 111);
        dev.persist_u64(b, 222);
        let _txn = txn_begin(&mut dev, &geo, &[a, b]).unwrap();
        // Mid-transaction updates, then crash (no commit).
        dev.persist_u64(a, 999);
        dev.persist_u64(b, 888);
        let rolled =
            recover(&mut dev, &geo, BugSet::fixed(), &Cov::disabled(), &BugTrace::new()).unwrap();
        assert!(rolled);
        assert_eq!(dev.read_u64(a), 111);
        assert_eq!(dev.read_u64(b), 222);
        assert!(!txn_active(&dev, &geo));
    }

    #[test]
    fn committed_txn_not_rolled_back() {
        let (mut dev, geo) = setup();
        let a = geo.inode_off(3);
        dev.persist_u64(a, 1);
        let txn = txn_begin(&mut dev, &geo, &[a]).unwrap();
        dev.persist_u64(a, 2);
        txn_commit(&mut dev, &geo, txn);
        let rolled =
            recover(&mut dev, &geo, BugSet::fixed(), &Cov::disabled(), &BugTrace::new()).unwrap();
        assert!(!rolled);
        assert_eq!(dev.read_u64(a), 2);
    }

    #[test]
    fn bug3_misinterprets_addresses_and_aborts() {
        let (mut dev, geo) = setup();
        let a = geo.inode_off(1);
        dev.persist_u64(a, 5);
        let _txn = txn_begin(&mut dev, &geo, &[a]).unwrap();
        dev.persist_u64(a, 6);
        let trace = BugTrace::new();
        let r = recover(&mut dev, &geo, BugSet::only(&[BugId::B03]), &Cov::disabled(), &trace);
        assert!(matches!(r, Err(FsError::Unmountable(_))), "{r:?}");
        assert!(trace.contains(BugId::B03));
    }

    #[test]
    fn empty_journal_recovers_to_nothing() {
        let (mut dev, geo) = setup();
        let rolled =
            recover(&mut dev, &geo, BugSet::as_released(), &Cov::disabled(), &BugTrace::new())
                .unwrap();
        assert!(!rolled);
    }
}
