//! Differential witnesses for representative-state checking
//! (`TestConfig::rep_check`): clustering crash states by behavioral
//! signature and checking one representative per class is a pure
//! performance optimization — a sweep with it on must find exactly the
//! same violations, from the same states, as the exhaustive sweep.
//!
//! Also home to the scoped-check × cross-dedup composition witness (the
//! memo layer used to force full walks whenever `cross_dedup` was on; now
//! memoized artifacts record their walk scope and the two compose).

use bench::{hunt_with_ace, run_suite};
use chipmunk::TestConfig;
use vfs::{bugs::bug_table, BugSet, FsName, Workload};
use workloads::{
    ace::{seq1, AceMode},
    fuzz::{FuzzConfig, Fuzzer},
};

use proptest::prelude::*;

/// The whole injected-bug corpus, hunted with ACE twice per bug —
/// representatives on vs exhaustive — must agree on every observable:
/// found-ness, violation class, the full first report, and the
/// workload/state counts to the find. Zero missed bugs, zero extra bugs.
#[test]
fn corpus_rep_on_vs_off_identical_verdicts() {
    let on = TestConfig { stop_on_first: true, ..TestConfig::default() };
    let off = TestConfig { stop_on_first: true, rep_check: false, ..TestConfig::default() };
    let mut seen_groups = std::collections::BTreeSet::new();
    let mut found = 0u64;
    let mut skipped_total = 0u64;
    for info in bug_table().iter().filter(|b| seen_groups.insert(b.fix_group)) {
        if !info.ace_findable {
            continue;
        }
        let bug = info.id.number();
        let (a, aw, astates) = hunt_with_ace(info.id, &on, 400);
        let (b, bw, bstates) = hunt_with_ace(info.id, &off, 400);
        assert_eq!(a.is_some(), b.is_some(), "bug {bug}: found-ness diverged");
        assert_eq!(aw, bw, "bug {bug}: workloads to the find diverged");
        assert_eq!(astates, bstates, "bug {bug}: crash states diverged");
        if let (Some(a), Some(b)) = (&a, &b) {
            assert_eq!(a.class, b.class, "bug {bug}: violation class diverged");
            assert_eq!(
                format!("{:?}", a.report),
                format!("{:?}", b.report),
                "bug {bug}: first report diverged"
            );
            assert_eq!(a.dedup_hits, b.dedup_hits, "bug {bug}");
            assert_eq!(b.rep_skipped, 0, "bug {bug}: rep off must not skip");
            found += 1;
            skipped_total += a.rep_skipped;
        }
    }
    assert!(found > 0, "the corpus hunt must find bugs");
    assert!(skipped_total > 0, "rep_check must have engaged across the corpus");
}

/// Scoped checking and cross-point dedup compose: memoized artifacts
/// record the walk scope they were produced under and are only reused for
/// a compatible scope, so `scoped_check + cross_dedup` no longer falls
/// back to full walks — and still changes no verdict.
#[test]
fn scoped_check_composes_with_cross_dedup() {
    let ws: Vec<Workload> = seq1(AceMode::Strong).into_iter().take(12).collect();
    // rep_check off throughout: a rep skip outranks a memo hit, so leaving
    // it on would mask the memo engagement this test pins.
    let mk = |scoped_check: bool, cross_dedup: bool| TestConfig {
        scoped_check,
        cross_dedup,
        rep_check: false,
        ..TestConfig::default()
    };
    let base = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), &mk(false, false));
    for (scoped, cross) in [(true, true), (true, false), (false, true)] {
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws.clone(), &mk(scoped, cross));
        let cell = format!("scoped_check={scoped} cross_dedup={cross}");
        assert_eq!(s.crash_points, base.crash_points, "{cell}");
        assert_eq!(s.crash_states, base.crash_states, "{cell}");
        assert_eq!(s.dedup_hits, base.dedup_hits, "{cell}");
        assert_eq!(s.reports, base.reports, "{cell}");
        assert_eq!(s.inflight, base.inflight, "{cell}");
        assert_eq!(
            format!("{:?}", s.bug_reports),
            format!("{:?}", base.bug_reports),
            "verdicts diverged at {cell}"
        );
        if cross {
            assert!(s.memo_hits > 0, "the memo must engage at {cell}");
        } else {
            assert_eq!(s.memo_hits, 0, "{cell}");
        }
    }
}

/// `CHIPMUNK_REP_VALIDATE=1` force-checks every would-be rep skip on a
/// private device and panics on any violation — the runtime mirror of
/// `scoped_validate`. The env var is latched process-wide on first read
/// (OnceLock), so the exercising sweep runs in a child process: this test
/// re-invokes itself with the variable set.
#[test]
fn chipmunk_rep_validate_env_forces_cross_checks() {
    if std::env::var_os("CHIPMUNK_REP_VALIDATE").is_some() {
        // Child mode: a sweep whose every skip is cross-checked. Any
        // congruence break panics here and fails the parent below.
        let ws: Vec<Workload> = seq1(AceMode::Strong).into_iter().take(6).collect();
        let s = run_suite(FsName::Nova, BugSet::fixed(), ws, &TestConfig::default());
        assert!(s.rep_skipped > 0, "validation must have had skips to check");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["chipmunk_rep_validate_env_forces_cross_checks", "--exact", "--nocapture"])
        .env("CHIPMUNK_REP_VALIDATE", "1")
        .output()
        .expect("spawn child test");
    assert!(
        out.status.success(),
        "validated sweep failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The behavioral signature is a checker congruence on *random*
    /// workloads, not just ACE shapes: with `rep_validate` on, every
    /// would-be skip is re-checked in full on a private device and any
    /// verdict mismatch panics; the outcome must equal the exhaustive
    /// sweep's bit for bit.
    #[test]
    fn rep_signature_is_a_checker_congruence_on_random_workloads(seed in any::<u64>()) {
        let mut fz = Fuzzer::new(seed, FuzzConfig::default());
        let w = fz.next_workload();
        let validate = TestConfig { rep_validate: true, ..TestConfig::default() };
        let off = TestConfig { rep_check: false, ..TestConfig::default() };
        let a = run_suite(FsName::Nova, BugSet::fixed(), vec![w.clone()], &validate);
        let b = run_suite(FsName::Nova, BugSet::fixed(), vec![w], &off);
        prop_assert_eq!(a.crash_points, b.crash_points);
        prop_assert_eq!(a.crash_states, b.crash_states);
        prop_assert_eq!(a.dedup_hits, b.dedup_hits);
        prop_assert_eq!(a.reports, b.reports);
        prop_assert_eq!(&a.inflight, &b.inflight);
        prop_assert_eq!(
            format!("{:?}", a.bug_reports),
            format!("{:?}", b.bug_reports),
            "rep_check changed a verdict on a random workload"
        );
    }
}
