//! The SplitFS implementation: a user-space component (staging + operation
//! log) over an ext4-DAX kernel component.

use std::collections::HashMap;

use ext4dax::Ext4Dax;
use pmem::{PmBackend, SharedDev, Window};
use vfs::{
    covpoint,
    fs::{FileSystem, FsOptions},
    BugId, BugSet, BugTrace, Cov, DirEntry, FallocMode, Fd, FileType, FsError, FsResult,
    Metadata, OpenFlags,
};

use crate::oplog::{off, OpEntry, ENTRY_SIZE, LOG_ENTRIES, MAGIC};

/// Checkpoint at least every this many logged operations.
const CKPT_PERIOD: u64 = 32;

/// Relink on close once this much data is staged (below the threshold the
/// log alone carries the durability, deferring the kernel commit).
const RELINK_THRESHOLD: u64 = 4096;

/// A staged (not yet relinked) data extent, in log order.
#[derive(Debug, Clone)]
struct Staged {
    /// Backend inode the data belongs to (authoritative for reads).
    ino: u64,
    /// A current path of the file (kept up to date across renames; used by
    /// the checkpoint relink).
    path: String,
    /// Destination file offset (the *actual* one — the log entry may carry
    /// a stale offset under bug 23).
    file_off: u64,
    /// Length.
    len: u64,
    /// Source offset in the U-Split window.
    staging_off: u64,
}

/// Per-descriptor user-space state.
#[derive(Debug, Clone)]
struct UFd {
    backend_fd: Fd,
    ino: u64,
    path: String,
    offset: u64,
    append: bool,
    /// File size observed at open (bug 23's stale append base).
    base_at_open: u64,
    /// Bytes this descriptor has appended (bug 23's bookkeeping).
    written: u64,
    /// Descriptor generation tag (bug 22's replay key).
    tag: u64,
    /// Whether this descriptor staged any data (checkpoint on close).
    dirty: bool,
}

/// The SplitFS hybrid file system.
pub struct SplitFs<D: PmBackend> {
    backend: Ext4Dax<Window<D>>,
    ulog: Window<D>,
    staged: Vec<Staged>,
    fds: HashMap<u64, UFd>,
    next_fd: u64,
    next_tag: u64,
    tail: u64,
    staging_ptr: u64,
    ops_since_ckpt: u64,
    bugs: BugSet,
    cov: Cov,
    trace: BugTrace,
}

fn ksize_for(total: u64) -> u64 {
    // The kernel component gets 3/4 of the device (block-aligned).
    (total / 4 * 3) / 4096 * 4096
}

impl<D: PmBackend> SplitFs<D> {
    /// Formats `dev`: an ext4-DAX instance in the kernel window and a fresh
    /// operation log in the U-Split window.
    pub fn mkfs(dev: D, opts: &FsOptions) -> FsResult<Self> {
        let total = dev.len();
        let ksize = ksize_for(total);
        if total - ksize < off::STAGING + 64 * 1024 {
            return Err(FsError::NoSpace);
        }
        let shared = SharedDev::new(dev);
        let kwin = shared.window(0, ksize);
        let mut ulog = shared.window(ksize, total - ksize);
        let backend = Ext4Dax::mkfs(kwin, &FsOptions::default())?;
        ulog.store_u64(off::MAGIC, MAGIC);
        ulog.store_u64(off::TAIL, 0);
        ulog.flush(0, 16);
        ulog.fence();
        Ok(SplitFs {
            backend,
            ulog,
            staged: Vec::new(),
            fds: HashMap::new(),
            next_fd: 3,
            next_tag: 1,
            tail: 0,
            staging_ptr: off::STAGING,
            ops_since_ckpt: 0,
            bugs: opts.bugs,
            cov: opts.cov.clone(),
            trace: opts.trace.clone(),
        })
    }

    /// Mounts `dev`: kernel-component recovery, then operation-log replay.
    pub fn mount(dev: D, opts: &FsOptions) -> FsResult<Self> {
        let total = dev.len();
        let ksize = ksize_for(total);
        let shared = SharedDev::new(dev);
        let kwin = shared.window(0, ksize);
        let ulog = shared.window(ksize, total - ksize);
        if ulog.read_u64(off::MAGIC) != MAGIC {
            return Err(FsError::Unmountable("bad U-Split window magic".into()));
        }
        let backend = Ext4Dax::mount(kwin, &FsOptions::default())?;
        let mut fs = SplitFs {
            backend,
            ulog,
            staged: Vec::new(),
            fds: HashMap::new(),
            next_fd: 3,
            next_tag: 1,
            tail: 0,
            staging_ptr: off::STAGING,
            ops_since_ckpt: 0,
            bugs: opts.bugs,
            cov: opts.cov.clone(),
            trace: opts.trace.clone(),
        };
        fs.replay()?;
        Ok(fs)
    }

    // ---- the operation log ----

    fn log_full(&self) -> bool {
        self.tail / ENTRY_SIZE >= LOG_ENTRIES
    }

    fn staging_room(&self) -> u64 {
        self.ulog.len().saturating_sub(self.staging_ptr)
    }

    /// Appends one entry and publishes the tail (flush + fence, then the
    /// 8-byte tail store — the entry is atomic and durable on return).
    fn log_append(&mut self, e: &OpEntry) -> FsResult<()> {
        if self.log_full() {
            self.checkpoint()?;
        }
        let enc = e.encode()?;
        let at = off::ENTRIES + self.tail;
        self.ulog.store(at, &enc);
        self.ulog.flush(at, ENTRY_SIZE);
        self.ulog.fence();
        self.tail += ENTRY_SIZE;
        self.ulog.persist_u64(off::TAIL, self.tail);
        self.ops_since_ckpt += 1;
        if self.ops_since_ckpt >= CKPT_PERIOD {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// The checkpoint ("relink"): staged data is written into the kernel
    /// component, the kernel journal is forced (making everything — and the
    /// new epoch — durable atomically), and the log is truncated.
    ///
    /// Bug 24 skips the forced journal commit: the kernel component's page
    /// cache absorbs the relink, the log is truncated anyway, and a crash
    /// loses every operation since the previous real commit.
    fn checkpoint(&mut self) -> FsResult<()> {
        covpoint!(self.cov);
        if self.tail == 0 && self.staged.is_empty() {
            self.ops_since_ckpt = 0;
            return Ok(());
        }
        // Relink staged extents.
        let staged = std::mem::take(&mut self.staged);
        for s in &staged {
            let data = self.ulog.read_vec(s.staging_off, s.len);
            match self.backend.open(&s.path, OpenFlags::RDWR) {
                Ok(bfd) => {
                    self.backend.pwrite(bfd, s.file_off, &data)?;
                    self.backend.close(bfd)?;
                }
                Err(FsError::NotFound) => {
                    // The path was unlinked while a descriptor kept the
                    // data alive; it cannot survive a crash anyway.
                    covpoint!(self.cov, 1);
                }
                Err(e) => return Err(e),
            }
        }
        let epoch = self.backend.epoch();
        self.backend.set_epoch(epoch + 1);
        if self.bugs.has(BugId::B24) {
            // BUG 24 (logic): the strict-mode relink must force the kernel
            // journal before truncating the log; this path forgets.
            self.trace.hit(BugId::B24);
        } else {
            self.backend.sync()?;
        }
        self.tail = 0;
        self.ulog.persist_u64(off::TAIL, 0);
        self.ulog.persist_u64(off::LOG_EPOCH, epoch + 1);
        self.staging_ptr = off::STAGING;
        self.ops_since_ckpt = 0;
        Ok(())
    }

    /// Mount-time log replay.
    fn replay(&mut self) -> FsResult<()> {
        let tail = self.ulog.read_u64(off::TAIL);
        if tail > LOG_ENTRIES * ENTRY_SIZE {
            return Err(FsError::Unmountable(format!(
                "operation-log tail {tail} exceeds the log area"
            )));
        }
        // Epoch check: the checkpoint bumps the kernel epoch *inside* the
        // forced journal commit, so a committed epoch newer than the log's
        // proves these entries were already relinked — replaying them again
        // would duplicate non-idempotent operations.
        let stale = self.backend.epoch() > self.ulog.read_u64(off::LOG_EPOCH);
        let mut entries: Vec<OpEntry> = Vec::new();
        if tail != 0 && !stale {
            let mut pos = 0;
            while pos < tail {
                if let Some(e) = OpEntry::decode(&self.ulog.read_vec(off::ENTRIES + pos, ENTRY_SIZE))
                {
                    entries.push(e);
                }
                pos += ENTRY_SIZE;
            }
        }

        // BUG 21 (logic): the replay loop uses the position after the last
        // *data* entry as its end marker, dropping trailing metadata
        // entries.
        if self.bugs.has(BugId::B21) {
            if let Some(last_data) = entries.iter().rposition(|e| e.is_data()) {
                if last_data + 1 < entries.len() {
                    self.trace.hit(BugId::B21);
                    covpoint!(self.cov, 2);
                }
                entries.truncate(last_data + 1);
            } else if !entries.is_empty() {
                self.trace.hit(BugId::B21);
                covpoint!(self.cov, 3);
                entries.clear();
            }
        }

        // BUG 25 (logic): a two-pass "optimization" applies metadata
        // entries first and data entries second; a data entry logged before
        // a rename then re-creates the old name.
        if self.bugs.has(BugId::B25) {
            let had_mix = entries.iter().any(OpEntry::is_data)
                && entries.iter().any(|e| !e.is_data());
            if had_mix {
                self.trace.hit(BugId::B25);
                covpoint!(self.cov, 4);
            }
            let (meta, data): (Vec<_>, Vec<_>) =
                entries.into_iter().partition(|e| !e.is_data());
            entries = meta.into_iter().chain(data).collect();
        }

        // BUG 22 (logic): the per-descriptor staging table is keyed by file;
        // when two descriptors were concurrently open, replay keeps only the
        // most recent descriptor's extents. (Sequential descriptors each
        // owned the table outright, so only concurrent entries are at risk
        // — which is why ACE's one-descriptor workloads cannot expose this.)
        let keep_tag: HashMap<String, u64> = entries
            .iter()
            .filter_map(|e| match e {
                OpEntry::Data { path, fd_tag, concurrent: true, .. } => {
                    Some((path.clone(), *fd_tag))
                }
                _ => None,
            })
            .collect(); // later entries overwrite: leaves the max (log-ordered) tag

        for e in &entries {
            match e {
                OpEntry::Data { fd_tag, concurrent: _, path, file_off, len, staging_off } => {
                    // Once any write on this file happened under concurrent
                    // descriptors, the buggy table holds only the latest
                    // descriptor's extents — older descriptors' entries
                    // (concurrent or not) are gone.
                    if self.bugs.has(BugId::B22) {
                        if let Some(&t) = keep_tag.get(path) {
                            if *fd_tag != t {
                                self.trace.hit(BugId::B22);
                                covpoint!(self.cov, 5);
                                continue;
                            }
                        }
                    }
                    let data = self.ulog.read_vec(*staging_off, *len);
                    match self.backend.open(path, OpenFlags::CREATE) {
                        Ok(bfd) => {
                            self.backend.pwrite(bfd, *file_off, &data)?;
                            self.backend.close(bfd)?;
                        }
                        Err(e) if e.is_benign() => {}
                        Err(e) => return Err(e),
                    }
                }
                other => {
                    let r = match other {
                        OpEntry::Creat { path } => self.backend.creat(path),
                        OpEntry::Mkdir { path } => self.backend.mkdir(path),
                        OpEntry::Unlink { path } => self.backend.unlink(path),
                        OpEntry::Rmdir { path } => self.backend.rmdir(path),
                        OpEntry::Link { old, new } => self.backend.link(old, new),
                        OpEntry::Rename { old, new } => self.backend.rename(old, new),
                        OpEntry::Truncate { path, size } => self.backend.truncate(path, *size),
                        OpEntry::Falloc { path, mode, off, len } => (|| {
                            let bfd = self.backend.open(path, OpenFlags::RDWR)?;
                            let r = self.backend.fallocate(bfd, *mode, *off, *len);
                            self.backend.close(bfd)?;
                            r
                        })(),
                        OpEntry::Data { .. } => unreachable!("handled above"),
                    };
                    match r {
                        Ok(()) => {}
                        Err(e) if e.is_benign() => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }

        // Finish with a checkpoint: commit the kernel component and
        // truncate the log.
        let epoch = self.backend.epoch();
        self.backend.set_epoch(epoch + 1);
        self.backend.sync()?;
        self.tail = 0;
        self.ulog.persist_u64(off::TAIL, 0);
        self.ulog.persist_u64(off::LOG_EPOCH, epoch + 1);
        Ok(())
    }

    // ---- merged reads ----

    fn staged_max_end(&self, ino: u64) -> u64 {
        self.staged
            .iter()
            .filter(|s| s.ino == ino)
            .map(|s| s.file_off + s.len)
            .max()
            .unwrap_or(0)
    }

    fn merged_size(&self, ino: u64, backend_size: u64) -> u64 {
        backend_size.max(self.staged_max_end(ino))
    }

    fn read_merged(&self, ino: u64, bfd: Fd, off_: u64, buf: &mut [u8]) -> FsResult<usize> {
        let bmeta_size = {
            // Backend size via the descriptor-independent path: read as much
            // as the backend has, then overlay.
            let mut probe = vec![0u8; buf.len()];
            let n = self.backend.pread(bfd, off_, &mut probe)?;
            buf[..n].copy_from_slice(&probe[..n]);
            buf[n..].fill(0);
            off_ + n as u64
        };
        let merged = self.merged_size(ino, bmeta_size);
        let mut read_end = bmeta_size.min(off_ + buf.len() as u64);
        for s in self.staged.iter().filter(|s| s.ino == ino) {
            let s_start = s.file_off.max(off_);
            let s_end = (s.file_off + s.len).min(off_ + buf.len() as u64);
            if s_start < s_end {
                let data = self
                    .ulog
                    .read_vec(s.staging_off + (s_start - s.file_off), s_end - s_start);
                buf[(s_start - off_) as usize..(s_end - off_) as usize].copy_from_slice(&data);
                read_end = read_end.max(s_end);
            }
        }
        read_end = read_end.max(merged.min(off_ + buf.len() as u64)).max(off_);
        Ok((read_end - off_) as usize)
    }

    fn resolve_ino(&self, path: &str) -> FsResult<u64> {
        Ok(self.backend.stat(path)?.ino)
    }

    /// A current name for a descriptor's inode: the recorded path if it
    /// still resolves to the inode, otherwise a reverse lookup over the
    /// (small) namespace — the opened name may be gone while a hard link
    /// survives, and durability must follow the survivor.
    fn current_name(&self, ino: u64, recorded: &str) -> Option<String> {
        if self.resolve_ino(recorded).map(|i| i == ino).unwrap_or(false) {
            return Some(recorded.to_string());
        }
        let mut queue = vec!["/".to_string()];
        while let Some(dir) = queue.pop() {
            let Ok(entries) = self.backend.readdir(&dir) else { continue };
            for e in entries {
                let p = if dir == "/" { format!("/{}", e.name) } else { format!("{dir}/{}", e.name) };
                match e.ftype {
                    vfs::FileType::Regular if e.ino == ino => return Some(p),
                    vfs::FileType::Directory => queue.push(p),
                    _ => {}
                }
            }
        }
        None
    }

    /// Drops staged extents for `ino` (content superseded or discarded).
    fn drop_staged(&mut self, ino: u64) {
        self.staged.retain(|s| s.ino != ino);
    }

    /// The staged data write (the U-Split fast path).
    fn do_write(&mut self, fd_key: u64, off_: u64, data: &[u8]) -> FsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        if data.len() as u64 > self.ulog.len() - off::STAGING {
            return Err(FsError::NoSpace);
        }
        if self.staging_room() < data.len() as u64 || self.log_full() {
            self.checkpoint()?;
        }
        let f = self.fds.get(&fd_key).ok_or(FsError::BadFd)?.clone();
        // If no name leads to this inode any more (truly orphaned), the
        // data cannot survive a crash; write through the kernel descriptor.
        // Otherwise follow a surviving name (the opened one, or a hard
        // link).
        let Some(name) = self.current_name(f.ino, &f.path) else {
            covpoint!(self.cov, 6);
            return self.backend.pwrite(f.backend_fd, off_, data);
        };
        // Stage the payload.
        let staging_off = self.staging_ptr;
        self.ulog.memcpy_nt(staging_off, data);
        self.ulog.fence();
        self.staging_ptr += (data.len() as u64).div_ceil(8) * 8;
        // BUG 23 (logic): append entries record the descriptor's private
        // base-at-open plus its own byte count instead of the real offset.
        let logged_off = if self.bugs.has(BugId::B23) && f.append {
            let stale = f.base_at_open + f.written;
            if stale != off_ {
                self.trace.hit(BugId::B23);
                covpoint!(self.cov, 7);
            }
            stale
        } else {
            off_
        };
        let concurrent = self.fds.values().filter(|x| x.ino == f.ino).count() > 1;
        self.log_append(&OpEntry::Data {
            fd_tag: f.tag,
            concurrent,
            path: name.clone(),
            file_off: logged_off,
            len: data.len() as u64,
            staging_off,
        })?;
        self.staged.push(Staged {
            ino: f.ino,
            path: name,
            file_off: off_,
            len: data.len() as u64,
            staging_off,
        });
        if let Some(f) = self.fds.get_mut(&fd_key) {
            f.written += data.len() as u64;
            f.dirty = true;
        }
        Ok(data.len())
    }
}

impl<D: PmBackend> FileSystem for SplitFs<D> {
    fn open(&mut self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        covpoint!(self.cov);
        let existed = self.backend.stat(path).is_ok();
        let bfd = self.backend.open(path, flags)?;
        let ino = self.resolve_ino(path)?;
        if !existed {
            // The creation must be durable: log it.
            self.log_append(&OpEntry::Creat { path: path.to_string() })?;
        } else if flags.trunc {
            self.drop_staged(ino);
            self.log_append(&OpEntry::Truncate { path: path.to_string(), size: 0 })?;
        }
        let size = self.merged_size(ino, self.backend.stat(path)?.size);
        let tag = self.next_tag;
        self.next_tag += 1;
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(
            fd,
            UFd {
                backend_fd: bfd,
                ino,
                path: path.to_string(),
                offset: 0,
                append: flags.append,
                base_at_open: size,
                written: 0,
                tag,
                dirty: false,
            },
        );
        Ok(Fd(fd))
    }

    fn close(&mut self, fd: Fd) -> FsResult<()> {
        let f = self.fds.remove(&fd.0).ok_or(FsError::BadFd)?;
        // SplitFS relinks on close once enough data has been staged; small
        // writes stay in the log (it alone provides their durability).
        if f.dirty && self.staging_ptr - crate::oplog::off::STAGING >= RELINK_THRESHOLD {
            covpoint!(self.cov);
            self.checkpoint()?;
        }
        self.backend.close(f.backend_fd)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        self.backend.mkdir(path)?;
        self.log_append(&OpEntry::Mkdir { path: path.to_string() })
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        // Flush staged state first: replay must not resurrect children.
        self.checkpoint()?;
        self.backend.rmdir(path)?;
        self.log_append(&OpEntry::Rmdir { path: path.to_string() })
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        covpoint!(self.cov);
        self.checkpoint()?;
        self.backend.unlink(path)?;
        self.log_append(&OpEntry::Unlink { path: path.to_string() })
    }

    fn link(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        self.backend.link(old, new)?;
        self.log_append(&OpEntry::Link { old: old.to_string(), new: new.to_string() })
    }

    fn rename(&mut self, old: &str, new: &str) -> FsResult<()> {
        covpoint!(self.cov);
        if old == new {
            // Delegate validation.
            return self.backend.rename(old, new);
        }
        // A replaced destination complicates staged-state bookkeeping:
        // flush first (the plain no-victim rename keeps its fast path).
        if self.backend.stat(new).is_ok() {
            covpoint!(self.cov, 8);
            self.checkpoint()?;
        }
        self.backend.rename(old, new)?;
        self.log_append(&OpEntry::Rename { old: old.to_string(), new: new.to_string() })?;
        // Keep staged paths current (reads and relinks use them).
        let prefix = format!("{old}/");
        for s in self.staged.iter_mut() {
            if s.path == old {
                s.path = new.to_string();
            } else if let Some(rest) = s.path.strip_prefix(&prefix) {
                s.path = format!("{new}/{rest}");
            }
        }
        for f in self.fds.values_mut() {
            if f.path == old {
                f.path = new.to_string();
            } else if let Some(rest) = f.path.strip_prefix(&prefix) {
                f.path = format!("{new}/{rest}");
            }
        }
        Ok(())
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        covpoint!(self.cov);
        // Flush staged data so clipping happens in exactly one place (the
        // kernel component).
        self.checkpoint()?;
        self.backend.truncate(path, size)?;
        self.log_append(&OpEntry::Truncate { path: path.to_string(), size })
    }

    fn fallocate(&mut self, fd: Fd, mode: FallocMode, off_: u64, len: u64) -> FsResult<()> {
        covpoint!(self.cov);
        let f = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.clone();
        if matches!(mode, FallocMode::ZeroRange | FallocMode::PunchHole) {
            self.checkpoint()?;
        }
        self.backend.fallocate(f.backend_fd, mode, off_, len)?;
        // Log under a name that still reaches the inode (the opened one, or
        // a surviving hard link). A truly orphaned descriptor's effects die
        // with the crash — logging them would replay onto whatever file now
        // owns the name.
        match self.current_name(f.ino, &f.path) {
            Some(name) => {
                self.log_append(&OpEntry::Falloc { path: name, mode, off: off_, len })?;
            }
            None => covpoint!(self.cov, 9),
        }
        Ok(())
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        let f = self.fds.get(&fd.0).ok_or(FsError::BadFd)?.clone();
        let name = self.current_name(f.ino, &f.path);
        let off_ = if f.append && name.is_some() {
            let n = name.as_deref().expect("checked");
            self.merged_size(f.ino, self.backend.stat(n).map(|m| m.size).unwrap_or(0))
        } else if f.append {
            // Orphaned descriptor: fall back to this descriptor's own view.
            f.base_at_open + f.written
        } else {
            f.offset
        };
        let n = self.do_write(fd.0, off_, data)?;
        if let Some(f) = self.fds.get_mut(&fd.0) {
            f.offset = off_ + n as u64;
        }
        Ok(n)
    }

    fn pwrite(&mut self, fd: Fd, off_: u64, data: &[u8]) -> FsResult<usize> {
        covpoint!(self.cov);
        self.do_write(fd.0, off_, data)
    }

    fn pread(&self, fd: Fd, off_: u64, buf: &mut [u8]) -> FsResult<usize> {
        let f = self.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        self.read_merged(f.ino, f.backend_fd, off_, buf)
    }

    fn fsync(&mut self, fd: Fd) -> FsResult<()> {
        covpoint!(self.cov);
        let _ = self.fds.get(&fd.0).ok_or(FsError::BadFd)?;
        self.checkpoint()
    }

    fn sync(&mut self) -> FsResult<()> {
        covpoint!(self.cov);
        self.checkpoint()
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let mut m = self.backend.stat(path)?;
        if m.ftype == FileType::Regular {
            m.size = self.merged_size(m.ino, m.size);
        }
        Ok(m)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.backend.readdir(path)
    }

    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let m = self.stat(path)?;
        if m.ftype != FileType::Regular {
            return Err(FsError::IsDir);
        }
        let mut out = self.backend.read_file(path)?;
        out.resize(m.size as usize, 0);
        for s in self.staged.iter().filter(|s| s.ino == m.ino) {
            let data = self.ulog.read_vec(s.staging_off, s.len);
            out[s.file_off as usize..(s.file_off + s.len) as usize].copy_from_slice(&data);
        }
        Ok(out)
    }
}
