//! Regenerates the §3.4.1 workload-count numbers.
//!
//! ```sh
//! cargo run --release -p bench --bin ace_counts
//! ```

use workloads::ace::{core_ops_metadata, seq1, seq2, seq3_metadata, AceMode};

fn main() {
    println!("ACE workload-space sizes (paper §3.4.1 in parentheses)\n");
    let s1 = seq1(AceMode::Strong).len();
    println!("strong seq-1:          {s1:>8}   (paper: 56)");
    let s2 = seq2(AceMode::Strong).count();
    println!("strong seq-2:          {s2:>8}   (paper: 3136)");
    let m = core_ops_metadata().len();
    let s3 = seq3_metadata().count();
    println!("strong seq-3 metadata: {s3:>8}   (paper: 50650; this enumeration is {m}^3)");
    let w1 = seq1(AceMode::Weak).len();
    println!("weak seq-1:            {w1:>8}   (paper: 419; different fsync-insertion rules)");
    let w2 = seq2(AceMode::Weak).count();
    println!("weak seq-2:            {w2:>8}   (paper: 432462; different fsync-insertion rules)");
    println!(
        "\nThe strong-mode spaces match the paper exactly for seq-1/seq-2 and to within \n\
         3 workloads (unspecified pruning) for seq-3. The weak-mode default generator \n\
         in CrashMonkey used richer fsync-placement enumeration; this reproduction \n\
         inserts one fsync/sync variant per workload (see EXPERIMENTS.md)."
    );
}
