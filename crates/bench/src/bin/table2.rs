//! Regenerates **Table 2**: the seven observations and the bugs associated
//! with each, cross-checked against the behaviour of this reproduction
//! (classification metadata and, where cheap, a live experiment).
//!
//! ```sh
//! cargo run --release -p bench --bin table2
//! ```

use vfs::bugs::{bug_table, BugKind};

const OBSERVATIONS: [&str; 7] = [
    "Many bugs are logic/design issues, not PM programming errors.",
    "The complexity of performing in-place updates leads to bugs.",
    "Recovery related to rebuilding in-DRAM state is a significant source of bugs.",
    "Complex features for increasing resilience can introduce crash consistency bugs.",
    "Many can only be exposed by simulating crashes during system calls.",
    "Short workloads were sufficient to expose many crash consistency bugs.",
    "Many bugs are exposed by replaying a few small writes onto previously persistent state.",
];

fn bugs_for(obs: u8) -> Vec<u32> {
    bug_table()
        .iter()
        .filter(|b| b.observations.contains(&obs))
        .map(|b| b.id.number())
        .collect()
}

fn fmt_ranges(nums: &[u32]) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i < nums.len() {
        let mut j = i;
        while j + 1 < nums.len() && nums[j + 1] == nums[j] + 1 {
            j += 1;
        }
        if j > i + 1 {
            out.push(format!("{}-{}", nums[i], nums[j]));
        } else {
            for n in &nums[i..=j] {
                out.push(n.to_string());
            }
        }
        i = j + 1;
    }
    out.join(", ")
}

fn main() {
    println!("Table 2: observations and the bugs associated with them\n");
    for (i, obs) in OBSERVATIONS.iter().enumerate() {
        let nums = bugs_for(i as u8 + 1);
        println!("{obs}\n    bugs: {}\n", fmt_ranges(&nums));
    }

    // Cross-checks against the implementation itself.
    println!("cross-checks:");
    let logic: std::collections::BTreeSet<u32> = bug_table()
        .iter()
        .filter(|b| b.kind == BugKind::Logic)
        .map(|b| b.fix_group)
        .collect();
    println!(
        "  observation 1: {} of 23 unique bugs are logic errors in this corpus \
         (paper: 19 of 23)",
        logic.len()
    );
    let obs5 = bugs_for(5);
    println!(
        "  observation 5: {} instances require a mid-syscall crash (paper: 11)",
        obs5.len()
    );
    let ace: std::collections::BTreeSet<u32> = bug_table()
        .iter()
        .filter(|b| b.ace_findable)
        .map(|b| b.fix_group)
        .collect();
    println!(
        "  observation 6: {} of 23 unique bugs fall to ACE's short workloads (paper: 19)",
        ace.len()
    );
}
