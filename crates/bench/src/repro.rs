//! Self-contained repro bundles: everything needed to re-check one crash
//! state of one workload on one (buggy) file system with one command.
//!
//! A bundle pins the *semantic* inputs of a finding — file system, injected
//! bug set, workload ops (wire form), crash-point ordinal, replayed write
//! subset, and the outcome-affecting [`TestConfig`] knobs — plus the expected
//! violation class/stage, so `hunt --repro bundle.json` can replay it and
//! assert the verdict. Pure performance knobs (threads, caches, scoped
//! checking) are deliberately not persisted: they are observationally
//! identical, so a bundle replays to the same verdict under any of them.

use chipmunk::{
    check_one_state, shrink,
    shrink::{matches_class, ShrinkStats},
    BugReport, Stage, TestConfig,
};
use vfs::{
    fs::{FsKind, FsOptions},
    BugId, BugSet, FsName, Workload,
};

use crate::{
    campaign::hostio::{RecoveryAction, StoreError},
    dispatch,
    jsonout::{self, JVal, Json},
    WithKind,
};

/// Current bundle format version (the `chipmunk_repro` field).
pub const BUNDLE_VERSION: u64 = 1;

/// A one-command repro: one crash state plus its expected verdict.
#[derive(Debug, Clone)]
pub struct ReproBundle {
    /// Target file system.
    pub fs: FsName,
    /// Injected bugs present during the run.
    pub bugs: Vec<BugId>,
    /// The workload (name + ops).
    pub workload: Workload,
    /// Global crash-point ordinal within the workload's recorded run.
    pub point: u64,
    /// Indices (into the point's in-flight writes) replayed on the base
    /// image to form the crash state.
    pub subset: Vec<usize>,
    /// Seed of the hunt that produced the finding (provenance only; the
    /// replay is fully determined by the fields above).
    pub seed: u64,
    /// Semantic harness knobs the replay must run under.
    pub cfg: TestConfig,
    /// Expected violation class ([`chipmunk::Violation::class`]).
    pub expect_class: String,
    /// Expected checker stage, for classes that carry one (sandbox
    /// verdicts).
    pub expect_stage: Option<Stage>,
}

/// Verdict of replaying a bundle.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Class of the violation the replayed state produced ("none" if the
    /// state checked clean).
    pub class: String,
    /// Stage of the violation, when it carries one.
    pub stage: Option<Stage>,
    /// One-line violation detail (empty if clean).
    pub detail: String,
    /// Whether class and stage match the bundle's expectation.
    pub ok: bool,
}

pub(crate) fn stage_name(s: Stage) -> &'static str {
    match s {
        Stage::Mount => "mount",
        Stage::Walk => "walk",
        Stage::Compare => "compare",
        Stage::Probe => "probe",
        Stage::Worker => "worker",
    }
}

pub(crate) fn stage_from(s: &str) -> Result<Stage, String> {
    match s {
        "mount" => Ok(Stage::Mount),
        "walk" => Ok(Stage::Walk),
        "compare" => Ok(Stage::Compare),
        "probe" => Ok(Stage::Probe),
        "worker" => Ok(Stage::Worker),
        _ => Err(format!("unknown stage {s:?}")),
    }
}

impl ReproBundle {
    /// Builds a bundle from a hunt finding. The report must carry a
    /// crash-point ordinal (every committed harness report does).
    pub fn from_report(
        fs: FsName,
        bugs: &[BugId],
        workload: &Workload,
        report: &BugReport,
        cfg: &TestConfig,
        seed: u64,
    ) -> Result<ReproBundle, String> {
        let point = report
            .point
            .ok_or_else(|| "report carries no crash-point ordinal".to_string())?;
        Ok(ReproBundle {
            fs,
            bugs: bugs.to_vec(),
            workload: workload.clone(),
            point,
            subset: report.subset_ids.clone(),
            seed,
            cfg: cfg.clone(),
            expect_class: report.violation.class().to_string(),
            expect_stage: report.violation.stage(),
        })
    }

    /// Renders the bundle as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("chipmunk_repro", Json::U(BUNDLE_VERSION)),
            ("fs", Json::S(self.fs.to_string())),
            (
                "bugs",
                Json::Arr(self.bugs.iter().map(|b| Json::U(b.number() as u64)).collect()),
            ),
            (
                "workload",
                Json::Obj(vec![
                    ("name", Json::S(self.workload.name.clone())),
                    (
                        "ops",
                        Json::Arr(
                            self.workload.to_wire_lines().into_iter().map(Json::S).collect(),
                        ),
                    ),
                ]),
            ),
            (
                "crash",
                Json::Obj(vec![
                    ("point", Json::U(self.point)),
                    (
                        "subset",
                        Json::Arr(self.subset.iter().map(|&i| Json::U(i as u64)).collect()),
                    ),
                ]),
            ),
            ("seed", Json::U(self.seed)),
            (
                "config",
                Json::Obj(
                    self.cfg
                        .semantic_knobs()
                        .into_iter()
                        .map(|(k, v)| (k, Json::S(v)))
                        .collect(),
                ),
            ),
            (
                "expect",
                Json::Obj(vec![
                    ("class", Json::S(self.expect_class.clone())),
                    (
                        "stage",
                        match self.expect_stage {
                            Some(s) => Json::S(stage_name(s).into()),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
        ])
    }

    /// Parses a bundle from JSON text. Version mismatches, unknown file
    /// systems / bugs / knobs / stages, and missing fields are all errors —
    /// a bundle must replay exactly or fail loudly.
    pub fn parse(text: &str) -> Result<ReproBundle, String> {
        let doc = jsonout::parse(text)?;
        let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing field {key:?}"));
        let version = field("chipmunk_repro")?
            .as_u64()
            .ok_or("chipmunk_repro must be an integer")?;
        if version != BUNDLE_VERSION {
            return Err(format!(
                "bundle version {version} unsupported (this build reads {BUNDLE_VERSION})"
            ));
        }
        let fs: FsName = field("fs")?
            .as_str()
            .ok_or("fs must be a string")?
            .parse()?;
        let mut bugs = Vec::new();
        for b in field("bugs")?.as_arr().ok_or("bugs must be an array")? {
            let n = b.as_u64().ok_or("bug numbers must be integers")?;
            let id = *BugId::ALL
                .iter()
                .find(|id| id.number() as u64 == n)
                .ok_or_else(|| format!("unknown bug number {n}"))?;
            bugs.push(id);
        }
        let wl = field("workload")?;
        let name = wl
            .get("name")
            .and_then(JVal::as_str)
            .ok_or("workload.name must be a string")?;
        let lines: Vec<&str> = wl
            .get("ops")
            .and_then(JVal::as_arr)
            .ok_or("workload.ops must be an array")?
            .iter()
            .map(|l| l.as_str().ok_or("workload.ops entries must be strings"))
            .collect::<Result<_, _>>()?;
        let workload = Workload::from_wire_lines(name, &lines)?;
        let crash = field("crash")?;
        let point = crash
            .get("point")
            .and_then(JVal::as_u64)
            .ok_or("crash.point must be an integer")?;
        let subset: Vec<usize> = crash
            .get("subset")
            .and_then(JVal::as_arr)
            .ok_or("crash.subset must be an array")?
            .iter()
            .map(|i| i.as_u64().map(|i| i as usize).ok_or("crash.subset entries must be integers"))
            .collect::<Result<_, _>>()?;
        let seed = field("seed")?.as_u64().ok_or("seed must be an integer")?;
        let mut cfg = TestConfig::default();
        match field("config")? {
            JVal::Obj(fields) => {
                for (k, v) in fields {
                    let v = v.as_str().ok_or_else(|| format!("config.{k} must be a string"))?;
                    cfg.set_knob(k, v)?;
                }
            }
            _ => return Err("config must be an object".into()),
        }
        let expect = field("expect")?;
        let expect_class = expect
            .get("class")
            .and_then(JVal::as_str)
            .ok_or("expect.class must be a string")?
            .to_string();
        let expect_stage = match expect.get("stage") {
            Some(JVal::Null) | None => None,
            Some(v) => Some(stage_from(v.as_str().ok_or("expect.stage must be a string")?)?),
        };
        Ok(ReproBundle {
            fs,
            bugs,
            workload,
            point,
            subset,
            seed,
            cfg,
            expect_class,
            expect_stage,
        })
    }

    /// Writes the bundle to `path` (atomically, with parent-dir fsync).
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        jsonout::write_atomic(path, &self.to_json().render())
    }

    /// Reads and parses a bundle from `path`. A malformed bundle comes back
    /// as [`StoreError::Corrupt`] naming the file, the byte offset (when
    /// the parser pinned one), and the recovery action — `hunt --repro`
    /// maps that to exit code 2 (distinct from a reproducible-but-failed
    /// replay, which exits 1).
    pub fn load(path: &str) -> Result<ReproBundle, StoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| StoreError::fatal(format!("{path}: {e}")))?;
        ReproBundle::parse(&text)
            .map_err(|e| StoreError::corrupt(std::path::Path::new(path), e, RecoveryAction::Fatal))
    }

    /// Replays the bundle: re-runs the workload's oracle and recorded run,
    /// rebuilds exactly the pinned crash state, checks it, and compares the
    /// verdict against the expectation. Deterministic — repeated calls give
    /// identical outcomes.
    pub fn replay(&self) -> Result<ReplayOutcome, String> {
        let opts = FsOptions::with_bugs(BugSet::only(&self.bugs));
        dispatch(self.fs, opts, Replay { bundle: self })
    }
}

struct Replay<'a> {
    bundle: &'a ReproBundle,
}

impl WithKind for Replay<'_> {
    type Out = Result<ReplayOutcome, String>;

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        let b = self.bundle;
        let probe = check_one_state(&kind, &b.workload, &b.cfg, b.point, &b.subset)?;
        Ok(match probe.violation {
            Some(v) => ReplayOutcome {
                ok: matches_class(&b.expect_class, b.expect_stage, &v),
                class: v.class().to_string(),
                stage: v.stage(),
                detail: v.detail().to_string(),
            },
            None => ReplayOutcome {
                class: "none".into(),
                stage: None,
                detail: String::new(),
                ok: false,
            },
        })
    }
}

/// Shrinks a hunt finding with [`chipmunk::shrink`] and packages the
/// minimized pair as a bundle. Returns the bundle plus the shrink work
/// counters.
pub fn shrink_to_bundle(
    fs: FsName,
    bugs: &[BugId],
    workload: &Workload,
    report: &BugReport,
    cfg: &TestConfig,
    seed: u64,
) -> Result<(ReproBundle, ShrinkStats), String> {
    let opts = FsOptions::with_bugs(BugSet::only(bugs));
    let shrunk = dispatch(fs, opts, ShrinkRun { workload, report, cfg })?;
    let bundle = ReproBundle::from_report(fs, bugs, &shrunk.workload, &shrunk.report, cfg, seed)?;
    Ok((bundle, shrunk.stats))
}

struct ShrinkRun<'a> {
    workload: &'a Workload,
    report: &'a BugReport,
    cfg: &'a TestConfig,
}

impl WithKind for ShrinkRun<'_> {
    type Out = Result<chipmunk::Shrunk, String>;

    fn call<K: FsKind>(self, kind: K) -> Self::Out {
        shrink(&kind, self.workload, self.report, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hunt_with_ace;

    fn find_bug4() -> (ReproBundle, TestConfig) {
        let cfg = TestConfig { stop_on_first: true, ..TestConfig::default() };
        let (hit, _, _) = hunt_with_ace(BugId::B04, &cfg, 0);
        let hit = hit.expect("bug 4 must fall to ACE");
        let bundle = ReproBundle::from_report(
            BugId::B04.info().fs,
            &[BugId::B04],
            &hit.workload,
            &hit.report,
            &cfg,
            0,
        )
        .expect("committed reports carry a crash point");
        (bundle, cfg)
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let (bundle, cfg) = find_bug4();
        let text = bundle.to_json().render();
        let back = ReproBundle::parse(&text).expect("round trip parses");
        assert_eq!(back.fs, bundle.fs);
        assert_eq!(back.bugs, bundle.bugs);
        assert_eq!(back.workload.name, bundle.workload.name);
        assert_eq!(back.workload.ops, bundle.workload.ops);
        assert_eq!(back.point, bundle.point);
        assert_eq!(back.subset, bundle.subset);
        assert_eq!(back.seed, bundle.seed);
        assert_eq!(back.cfg.semantic_knobs(), cfg.semantic_knobs());
        assert_eq!(back.expect_class, bundle.expect_class);
        assert_eq!(back.expect_stage, bundle.expect_stage);
        // And the rendered form is stable (byte-identical re-render).
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn replay_reproduces_the_finding_deterministically() {
        let (bundle, _) = find_bug4();
        let a = bundle.replay().expect("replay runs");
        assert!(a.ok, "expected {} got {} ({})", bundle.expect_class, a.class, a.detail);
        let b = bundle.replay().expect("replay runs twice");
        assert_eq!(a.class, b.class);
        assert_eq!(a.detail, b.detail);
    }

    #[test]
    fn shrunk_bundle_is_monotone_and_still_reproduces() {
        let (bundle, cfg) = find_bug4();
        let (small, stats) = shrink_to_bundle(
            bundle.fs,
            &bundle.bugs,
            &bundle.workload,
            // Rebuild the report shape the shrinker wants from the bundle.
            &{
                let out = bundle.replay().unwrap();
                assert!(out.ok);
                chipmunk::BugReport {
                    workload: bundle.workload.name.clone(),
                    op_seq: 0,
                    op_desc: String::new(),
                    phase: chipmunk::CrashPhase::DuringSyscall,
                    subset: String::new(),
                    point: Some(bundle.point),
                    subset_ids: bundle.subset.clone(),
                    violation: chipmunk::Violation::AtomicityViolation(out.detail),
                }
            },
            &cfg,
            0,
        )
        .expect("shrink succeeds");
        assert!(small.workload.ops.len() <= bundle.workload.ops.len());
        assert!(small.subset.len() <= bundle.subset.len());
        assert_eq!(stats.ops_after, small.workload.ops.len());
        // The shrunk ops are a subsequence of the originals.
        let mut it = bundle.workload.ops.iter();
        assert!(small.workload.ops.iter().all(|op| it.any(|o| o == op)));
        assert!(small.replay().unwrap().ok);
    }

    #[test]
    fn parse_rejects_broken_bundles() {
        let (bundle, _) = find_bug4();
        let good = bundle.to_json().render();
        for (needle, replacement, why) in [
            ("\"chipmunk_repro\": 1", "\"chipmunk_repro\": 99", "future version"),
            ("\"NOVA\"", "\"btrfs\"", "unknown fs"),
            ("\"bugs\": [\n    4\n  ]", "\"bugs\": [\n    26\n  ]", "unknown bug"),
            ("\"device_size\"", "\"warp_factor\"", "unknown knob"),
            ("\"stage\": null", "\"stage\": \"liftoff\"", "unknown stage"),
            ("\"seed\": 0", "\"seed\": true", "non-integer seed"),
        ] {
            assert!(good.contains(needle), "test fixture drifted: {needle:?} not found");
            let bad = good.replace(needle, replacement);
            assert!(ReproBundle::parse(&bad).is_err(), "{why} should be rejected");
        }
    }
}
