//! PMFS §4.4 extra: fallocate range overflow (KASAN analogue).

use pmfs::PmfsKind;
use pmem::PmDevice;
use vfs::{
    fs::{FileSystem, FsKind, FsOptions},
    FallocMode, FsError, OpenFlags,
};

#[test]
fn fallocate_overflow_detected_when_buggy() {
    let kind = PmfsKind { opts: FsOptions { extra_bugs: true, ..FsOptions::fixed() } };
    let mut fs = kind.mkfs(PmDevice::new(4 << 20)).unwrap();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    let r = fs.fallocate(fd, FallocMode::Allocate, u64::MAX - 4, 16);
    assert!(matches!(r, Err(FsError::Detected(_))), "{r:?}");
}

#[test]
fn fallocate_overflow_is_einval_without_extras() {
    let kind = PmfsKind { opts: FsOptions::fixed() };
    let mut fs = kind.mkfs(PmDevice::new(4 << 20)).unwrap();
    let fd = fs.open("/f", OpenFlags::CREAT_TRUNC).unwrap();
    assert_eq!(
        fs.fallocate(fd, FallocMode::Allocate, u64::MAX - 4, 16),
        Err(FsError::Invalid)
    );
}
